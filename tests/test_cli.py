"""CLI smoke and behavior tests (python -m repro ...)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        p = build_parser()
        for cmd in ("lulesh", "hpcg", "cholesky", "sweep", "validate", "info"):
            args = p.parse_args([cmd] if cmd in ("validate", "info") else [cmd])
            assert callable(args.fn)

    def test_bad_machine_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["lulesh", "--machine", "cray-1", "-s", "8", "-i", "1", "--tpl", "4"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "skylake" in out
        assert "discovery costs" in out

    def test_lulesh_single_rank(self, capsys):
        rc = main(["lulesh", "-s", "16", "-i", "2", "--tpl", "16",
                   "--machine", "tiny", "--threads", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tasks=" in out
        assert "work=" in out

    def test_lulesh_cluster(self, capsys):
        rc = main(["lulesh", "-s", "12", "-i", "2", "--tpl", "8",
                   "--ranks", "8", "--threads", "4", "--machine", "scaled-epyc"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cluster makespan" in out
        assert "ratio" in out

    def test_hpcg(self, capsys):
        rc = main(["hpcg", "--rows", "4096", "-i", "2", "--tpl", "8",
                   "--machine", "tiny", "--threads", "4"])
        assert rc == 0
        assert "grain=" in capsys.readouterr().out

    def test_cholesky(self, capsys):
        rc = main(["cholesky", "-n", "512", "-b", "128", "-i", "2",
                   "--machine", "tiny", "--threads", "4"])
        assert rc == 0
        assert "per factorization" in capsys.readouterr().out

    def test_sweep(self, capsys):
        rc = main(["sweep", "-s", "12", "-i", "2", "--tpl-min", "4",
                   "--tpl-max", "32", "--points", "3", "--machine", "tiny",
                   "--threads", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best TPL=" in out
        assert "TPL sweep" in out

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_validate_with_opts(self, capsys):
        assert main(["validate", "--opts", "b"]) == 0


class TestCampaignCommand:
    @staticmethod
    def specfile(tmp_path, tpls=(2, 4)):
        from repro.campaign import ExperimentSpec, dump_specs
        from repro.memory.machine import tiny_test_machine
        from repro.runtime import presets

        base = ExperimentSpec(
            app="lulesh",
            config=presets.mpc_omp(tiny_test_machine(4), n_threads=4),
            params={"s": 8, "iterations": 1, "tpl": tpls[0]},
        )
        path = tmp_path / "specs.json"
        path.write_text(dump_specs([base.with_params(tpl=t) for t in tpls]))
        return path

    def test_example_is_loadable(self, capsys):
        from repro.campaign import load_specs

        assert main(["campaign", "--example"]) == 0
        specs = load_specs(capsys.readouterr().out)
        assert len(specs) == 9
        assert all(s.app == "lulesh" for s in specs)
        # The example exercises the whole fidelity ladder.
        assert {s.fidelity for s in specs} == {"des", "replay", "analytic"}

    def test_specfile_required(self, capsys):
        assert main(["campaign"]) == 2
        assert "SPECFILE" in capsys.readouterr().err

    def test_run_then_cached(self, tmp_path, capsys):
        path = self.specfile(tmp_path)
        cache = tmp_path / "cache"
        rc = main(["campaign", str(path), "--cache-dir", str(cache), "--json"])
        assert rc == 0
        first = json.loads(capsys.readouterr().out)
        assert first["n_executed"] == 2
        assert first["n_failed"] == 0

        rc = main(["campaign", str(path), "--cache-dir", str(cache), "--json"])
        assert rc == 0
        second = json.loads(capsys.readouterr().out)
        assert second["n_cached"] == 2
        assert second["n_executed"] == 0
        # same runs, same content keys, same makespans
        assert [r["key"] for r in first["runs"]] == [r["key"] for r in second["runs"]]
        assert [r["makespan"] for r in first["runs"]] == \
            [r["makespan"] for r in second["runs"]]

    def test_table_output(self, tmp_path, capsys):
        path = self.specfile(tmp_path)
        rc = main(["campaign", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lulesh/task" in out
        assert "2 runs" in out

    def test_json_output_is_deterministic(self, tmp_path, capsys):
        path = self.specfile(tmp_path)
        cache = tmp_path / "cache"
        main(["campaign", str(path), "--cache-dir", str(cache), "--json"])
        a = capsys.readouterr().out
        main(["campaign", str(path), "--cache-dir", str(cache), "--json"])
        b = capsys.readouterr().out
        da, db = json.loads(a), json.loads(b)
        da["n_cached"] = db["n_cached"] = None
        da["n_executed"] = db["n_executed"] = None
        for run in da["runs"] + db["runs"]:
            run["cached"] = run["attempts"] = None
        assert da == db


class TestSweepJobs:
    def test_sweep_with_jobs_and_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        argv = ["sweep", "-s", "12", "-i", "2", "--tpl-min", "4",
                "--tpl-max", "16", "--points", "3", "--machine", "tiny",
                "--threads", "4", "--jobs", "2", "--cache-dir", str(cache)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "best TPL=" in out
        # One result per point, plus one compiled-graph artifact per
        # distinct program structure (3 TPLs) under compiled/.
        results = [p for p in cache.rglob("*.json")
                   if "compiled" not in p.parts]
        compiled = [p for p in cache.rglob("*.json") if "compiled" in p.parts]
        assert len(results) == 3
        assert len(compiled) == 3


class TestLintJsonDeterminism:
    def test_lint_json_is_byte_identical_across_runs(self, capsys):
        argv = ["lint", "lulesh", "-s", "8", "-i", "2", "--tpl", "4",
                "--machine", "tiny", "--threads", "4", "--json"]
        main(argv)
        a = capsys.readouterr().out
        main(argv)
        b = capsys.readouterr().out
        assert a == b
        doc = json.loads(a)
        # findings arrive sorted: severity desc, then rule name
        sevs = [f["severity"] for f in doc["findings"]]
        assert sevs == sorted(sevs, reverse=True)


class TestOffloadFlag:
    def test_lulesh_offload(self, capsys):
        from repro.cli import main

        rc = main(["lulesh", "-s", "12", "-i", "2", "--tpl", "8",
                   "--machine", "tiny", "--threads", "4", "--offload"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "accelerator:" in out
        assert "stream" in out


class TestQueryCommand:
    def _build(self, tmp_path):
        """A store holding one tiny two-spec campaign under id ``c1``."""
        from repro.campaign.spec import ExperimentSpec, dump_specs
        from repro.memory.machine import tiny_test_machine
        from repro.runtime import presets

        base = ExperimentSpec(
            app="lulesh",
            config=presets.mpc_omp(tiny_test_machine(4), n_threads=4),
            params={"s": 8, "iterations": 1, "tpl": 4},
        )
        specfile = tmp_path / "specs.json"
        specfile.write_text(dump_specs([base, base.with_params(tpl=8)]))
        store = tmp_path / "store.sqlite"
        assert main(["campaign", str(specfile), "--db", str(store),
                     "--campaign-id", "c1", "--json"]) == 0
        return specfile, store

    def test_campaign_db_then_resume_zero_rows(self, tmp_path, capsys):
        from repro.db import CampaignDB

        specfile, store = self._build(tmp_path)
        capsys.readouterr()
        with CampaignDB(store) as db:
            before = db.table_counts()
        assert main(["campaign", str(specfile), "--db", str(store),
                     "--campaign-id", "c1", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["n_cached"] == 2 and out["n_executed"] == 0
        with CampaignDB(store) as db:
            assert db.table_counts() == before

    def test_db_and_cache_dir_conflict(self, tmp_path, capsys):
        specfile, store = self._build(tmp_path)
        rc = main(["campaign", str(specfile), "--db", str(store),
                   "--cache-dir", str(tmp_path / "c")])
        assert rc == 2
        assert "not both" in capsys.readouterr().err

    def test_runs_report_table(self, tmp_path, capsys):
        _, store = self._build(tmp_path)
        capsys.readouterr()
        assert main(["query", str(store)]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out and "c1" in out
        assert "2 row(s)" in out

    def test_sql_passthrough_json(self, tmp_path, capsys):
        _, store = self._build(tmp_path)
        capsys.readouterr()
        assert main(["query", str(store), "--sql",
                     "SELECT COUNT(*) AS n FROM runs", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["columns"] == ["n"] and doc["rows"] == [[2]]

    def test_sql_writes_rejected(self, tmp_path, capsys):
        _, store = self._build(tmp_path)
        capsys.readouterr()
        rc = main(["query", str(store), "--sql", "DELETE FROM runs"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_missing_store_is_error_not_traceback(self, tmp_path, capsys):
        rc = main(["query", str(tmp_path / "nope.sqlite")])
        assert rc == 2
        assert "no such store" in capsys.readouterr().err

    def test_pair_report_requires_a_and_b(self, tmp_path, capsys):
        _, store = self._build(tmp_path)
        capsys.readouterr()
        rc = main(["query", str(store), "discovery-regressions"])
        assert rc == 2
        assert "--a" in capsys.readouterr().err

    def test_profile_db_streams_trace(self, tmp_path, capsys):
        from repro.db import CampaignDB

        store = tmp_path / "store.sqlite"
        rc = main(["profile", "lulesh", "-s", "8", "-i", "1", "--tpl", "4",
                   "--machine", "tiny", "--threads", "2",
                   "--db", str(store)])
        assert rc == 0
        assert str(store) in capsys.readouterr().out
        with CampaignDB(store) as db:
            counts = db.table_counts()
        assert counts["spans"] > 0 and counts["runs"] == 1
        capsys.readouterr()
        assert main(["query", str(store), "top-critical-tasks"]) == 0
        assert "seconds" in capsys.readouterr().out

    def test_info_reports_db_schema(self, capsys):
        from repro.db import SCHEMA_VERSION, table_inventory

        assert main(["info", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["db"]["schema_version"] == SCHEMA_VERSION
        assert doc["db"]["tables"] == table_inventory()
        assert main(["info"]) == 0
        assert "repro.db" in capsys.readouterr().out


class TestMetricsCommand:
    def _build(self, tmp_path, campaign="m1", snapshot_every="1"):
        """A store with persisted metric snapshots from a tiny campaign."""
        specfile = TestCampaignCommand.specfile(tmp_path)
        store = tmp_path / "store.sqlite"
        argv = ["campaign", str(specfile), "--db", str(store),
                "--campaign-id", campaign, "--json"]
        if snapshot_every:
            argv += ["--snapshot-every", snapshot_every]
        assert main(argv) == 0
        return specfile, store

    def test_export_validates_as_exposition(self, tmp_path, capsys):
        from repro.metrics.prometheus import validate_exposition

        _, store = self._build(tmp_path)
        capsys.readouterr()
        assert main(["metrics", "export", str(store)]) == 0
        text = capsys.readouterr().out
        fams = validate_exposition(text)
        assert fams["repro_campaign_runs_total"]["type"] == "counter"
        assert fams["repro_campaign_makespan_seconds"]["type"] == "histogram"
        # volatile wall-clock families never reach the export
        assert "repro_campaign_eta_seconds" not in fams
        assert "repro_campaign_run_wall_seconds" not in fams

    def test_export_to_file(self, tmp_path, capsys):
        _, store = self._build(tmp_path)
        out = tmp_path / "metrics.prom"
        assert main(["metrics", "export", str(store), "-o", str(out)]) == 0
        assert "repro_campaign_specs 2" in out.read_text()

    def test_export_snapshot_selection(self, tmp_path, capsys):
        _, store = self._build(tmp_path)
        capsys.readouterr()
        assert main(["metrics", "export", str(store), "--snapshot", "1"]) == 0
        first = capsys.readouterr().out
        # after one settled run, exactly one run event has fired
        assert 'repro_campaign_runs_total{event="done"} 1' in first
        assert main(["metrics", "export", str(store), "--snapshot", "2"]) == 0
        assert 'repro_campaign_runs_total{event="done"} 2' \
            in capsys.readouterr().out

    def test_export_identical_campaigns_byte_identical(self, tmp_path, capsys):
        exports = []
        for sub in ("a", "b"):
            d = tmp_path / sub
            d.mkdir()
            _, store = self._build(d)
            capsys.readouterr()
            assert main(["metrics", "export", str(store)]) == 0
            exports.append(capsys.readouterr().out)
        assert exports[0] == exports[1]

    def test_empty_store_is_error_not_traceback(self, tmp_path, capsys):
        from repro.db import CampaignDB

        store = tmp_path / "empty.sqlite"
        with CampaignDB(store) as db:
            db.conn
        rc = main(["metrics", "export", str(store)])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_serve_scrape_round_trip(self, tmp_path, capsys):
        import socket
        import threading
        import time as _time
        import urllib.request

        _, store = self._build(tmp_path)
        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]
        t = threading.Thread(
            target=main,
            args=(["metrics", "serve", str(store), "--port", str(port)],),
            daemon=True,
        )
        t.start()
        body = None
        for _ in range(50):
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=1
                ) as resp:
                    assert resp.headers["Content-Type"].startswith(
                        "text/plain; version=0.0.4"
                    )
                    body = resp.read().decode()
                break
            except OSError:
                _time.sleep(0.05)
        assert body is not None and "repro_campaign_specs 2" in body

    def test_campaign_live_writes_status_to_stderr(self, tmp_path, capsys):
        specfile = TestCampaignCommand.specfile(tmp_path)
        rc = main(["campaign", str(specfile), "--live",
                   "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        err = capsys.readouterr().err
        assert "2/2" in err
        assert "hit" in err and "busy" in err

    def test_resume_with_metrics_adds_no_result_rows(self, tmp_path, capsys):
        from repro.db import CampaignDB

        specfile, store = self._build(tmp_path)
        capsys.readouterr()
        with CampaignDB(store) as db:
            before = db.table_counts()
        assert main(["campaign", str(specfile), "--db", str(store),
                     "--campaign-id", "m1", "--snapshot-every", "1",
                     "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["n_cached"] == 2 and out["n_executed"] == 0
        with CampaignDB(store) as db:
            after = db.table_counts()
        # resume rewrites the same metric snapshot ids in place (REPLACE
        # on the same keys) and adds nothing anywhere else
        assert after == before


class TestReportCommand:
    def test_report_renders_store(self, tmp_path, capsys):
        specfile = TestCampaignCommand.specfile(tmp_path)
        store = tmp_path / "store.sqlite"
        assert main(["campaign", str(specfile), "--db", str(store),
                     "--campaign-id", "r1", "--json"]) == 0
        out = tmp_path / "report.html"
        capsys.readouterr()
        assert main(["report", str(store), "-o", str(out)]) == 0
        assert str(out) in capsys.readouterr().err
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "makespan sweep" in text
        assert "Campaign report" in text

    def test_missing_store_is_error_not_traceback(self, tmp_path, capsys):
        rc = main(["report", str(tmp_path / "nope.sqlite"),
                   "-o", str(tmp_path / "r.html")])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestInfoHookCatalogue:
    def test_campaign_hooks_in_json(self, capsys):
        from repro.campaign.bus import HOOKS

        assert main(["info", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["campaign_hooks"]) == set(HOOKS)
        for entry in doc["campaign_hooks"].values():
            assert entry["signature"].startswith("(")
            assert entry["description"]

    def test_campaign_hooks_in_text(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "campaign bus hooks" in out
        assert "run_cached" in out and "campaign_done" in out
