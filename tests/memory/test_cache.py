"""Unit tests for the LRU cache."""

import pytest

from repro.memory.cache import LRUCache


class TestBasics:
    def test_insert_and_touch(self):
        c = LRUCache(1000)
        c.insert(1, 100)
        assert c.touch(1)
        assert not c.touch(2)
        assert c.used_bytes == 100

    def test_capacity_never_exceeded(self):
        c = LRUCache(250)
        for i in range(10):
            c.insert(i, 100)
            assert c.used_bytes <= 250

    def test_lru_eviction_order(self):
        c = LRUCache(300)
        c.insert(1, 100)
        c.insert(2, 100)
        c.insert(3, 100)
        c.touch(1)  # 2 becomes LRU
        c.insert(4, 100)
        assert 1 in c
        assert 2 not in c
        assert 3 in c
        assert 4 in c

    def test_oversized_chunk_bypasses(self):
        c = LRUCache(100)
        c.insert(1, 50)
        c.insert(2, 1000)
        assert 2 not in c
        assert 1 in c  # untouched by the streaming access

    def test_reinsert_updates_size(self):
        c = LRUCache(1000)
        c.insert(1, 100)
        c.insert(1, 300)
        assert c.used_bytes == 300
        assert len(c) == 1

    def test_invalidate(self):
        c = LRUCache(1000)
        c.insert(1, 100)
        assert c.invalidate(1)
        assert not c.invalidate(1)
        assert c.used_bytes == 0

    def test_clear(self):
        c = LRUCache(1000)
        for i in range(5):
            c.insert(i, 10)
        c.clear()
        assert len(c) == 0
        assert c.used_bytes == 0

    def test_zero_byte_chunk(self):
        c = LRUCache(100)
        c.insert(1, 0)
        assert 1 in c
        assert c.used_bytes == 0

    def test_negative_bytes_rejected(self):
        c = LRUCache(100)
        with pytest.raises(ValueError):
            c.insert(1, -1)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_chunks_in_lru_order(self):
        c = LRUCache(1000)
        c.insert(1, 10)
        c.insert(2, 10)
        c.touch(1)
        assert list(c.chunks()) == [2, 1]
