"""Unit tests for machine specs."""

import pytest

from repro.memory.machine import (
    MachineSpec,
    epyc_7763_numa,
    skylake_8168,
    tiny_test_machine,
)


class TestPresets:
    def test_skylake_shape(self):
        m = skylake_8168()
        assert m.n_cores == 24
        assert m.l1_bytes < m.l2_bytes < m.l3_bytes

    def test_epyc_shape(self):
        m = epyc_7763_numa()
        assert m.n_cores == 16

    def test_tiny(self):
        assert tiny_test_machine(3).n_cores == 3


class TestDerived:
    def test_with_cores(self):
        m = skylake_8168().with_cores(8)
        assert m.n_cores == 8
        assert m.l3_bytes == skylake_8168().l3_bytes

    def test_scaled(self):
        m = skylake_8168().scaled(0.5)
        assert m.l3_bytes == skylake_8168().l3_bytes // 2
        assert m.dram_bw == skylake_8168().dram_bw  # bandwidths untouched

    def test_scaled_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            skylake_8168().scaled(0)


class TestValidation:
    def test_cache_ordering_enforced(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            MachineSpec(
                name="bad",
                n_cores=1,
                freq_hz=1e9,
                flops_per_core=1e9,
                l1_bytes=1024,
                l2_bytes=512,
                l3_bytes=2048,
                l1_bw=1e9,
                l2_bw=1e9,
                l3_bw=1e9,
                dram_bw=1e9,
                l1_lat_cycles=1,
                l2_lat_cycles=2,
                l3_lat_cycles=3,
            )

    def test_positive_cores_enforced(self):
        with pytest.raises(ValueError):
            tiny_test_machine(0)
