"""Unit tests for the cache hierarchy / DRAM contention model."""

import pytest

from repro.memory.hierarchy import MemCounters, MemoryHierarchy
from repro.memory.machine import tiny_test_machine
from repro.util.units import KiB


@pytest.fixture
def hier():
    return MemoryHierarchy(tiny_test_machine(2))


class TestLevels:
    def test_cold_access_hits_dram(self, hier):
        res = hier.access(0, [(1, 512)])
        assert res.bytes_dram == 512
        assert hier.counters.l3_misses > 0

    def test_immediate_reuse_hits_l1(self, hier):
        hier.access(0, [(1, 512)])
        before = hier.counters.l1_misses
        res = hier.access(0, [(1, 512)])
        assert res.bytes_dram == 0
        assert hier.counters.l1_misses == before
        assert hier.counters.bytes_l1 == 512

    def test_other_worker_hits_shared_l3(self, hier):
        hier.access(0, [(1, 512)])
        res = hier.access(1, [(1, 512)])
        assert res.bytes_dram == 0
        assert hier.counters.bytes_l3 == 512

    def test_l1_eviction_falls_to_l2(self, hier):
        m = hier.machine
        # Fill L1 (1 KiB) with other chunks; chunk 1 should land in L2.
        hier.access(0, [(1, 512)])
        hier.access(0, [(2, 512), (3, 512)])
        res = hier.access(0, [(1, 512)])
        assert hier.counters.bytes_l2 >= 512
        assert res.bytes_dram == 0

    def test_miss_counting_in_lines(self, hier):
        hier.access(0, [(1, 640)])  # 10 lines of 64B
        assert hier.counters.l1_misses == 10
        assert hier.counters.l2_misses == 10
        assert hier.counters.l3_misses == 10

    def test_stall_cycles_accumulate(self, hier):
        hier.access(0, [(1, 640)])
        c = hier.counters
        assert c.l3_stall_cycles > 0
        assert c.total_stall_cycles == pytest.approx(
            c.l1_stall_cycles + c.l2_stall_cycles + c.l3_stall_cycles
        )

    def test_empty_footprint(self, hier):
        res = hier.access(0, [])
        assert res.time == 0.0

    def test_zero_byte_chunk_skipped(self, hier):
        res = hier.access(0, [(1, 0)])
        assert res.time == 0.0

    def test_bad_worker_rejected(self, hier):
        with pytest.raises(IndexError):
            hier.access(7, [(1, 64)])


class TestContention:
    def test_dram_sharing_slows_access(self, hier):
        t1 = hier.access(0, [(1, 4096)], dram_sharers=1).time
        hier.reset()
        t2 = hier.access(0, [(1, 4096)], dram_sharers=2).time
        assert t2 > t1
        assert t2 == pytest.approx(
            4096 / (hier.machine.dram_bw / 2), rel=1e-6
        )

    def test_cached_access_unaffected_by_sharers(self, hier):
        hier.access(0, [(1, 512)])
        t1 = hier.access(0, [(1, 512)], dram_sharers=1).time
        t2 = hier.access(0, [(1, 512)], dram_sharers=8).time
        assert t1 == pytest.approx(t2)


class TestStreaming:
    def test_stream_time_is_bandwidth_bound(self, hier):
        t = hier.stream_time(1_000_000, threads=2)
        assert t == pytest.approx(1_000_000 / hier.machine.dram_bw)

    def test_stream_counts_misses(self, hier):
        hier.stream_time(1_000_000, threads=1)
        assert hier.counters.l3_misses == -(-1_000_000 // 64)

    def test_chunked_stream_reuses_l3(self, hier):
        """A chunk already resident in L3 streams from there, not DRAM."""
        hier.stream([(1, 6400)], threads=2)
        assert hier.counters.bytes_dram == 6400
        t = hier.stream([(1, 6400)], threads=2)
        assert hier.counters.bytes_dram == 6400  # unchanged: L3 hit
        assert t == pytest.approx(6400 / (hier.machine.l3_bw * 2))

    def test_chunked_stream_cycling_workset_misses(self, hier):
        """Chunks cycling through a too-small L3 always pay DRAM."""
        big = hier.machine.l3_bytes // 2 + 1
        for _ in range(3):
            hier.stream([(1, big), (2, big), (3, big)], threads=1)
        assert hier.counters.bytes_l3 == 0
        assert hier.counters.bytes_dram == 9 * big

    def test_stream_negative_rejected(self, hier):
        with pytest.raises(ValueError):
            hier.stream_time(-1, threads=1)


class TestReset:
    def test_reset_clears_everything(self, hier):
        hier.access(0, [(1, 512)])
        hier.reset()
        assert hier.counters.l1_misses == 0
        res = hier.access(0, [(1, 512)])
        assert res.bytes_dram == 512


class TestCounters:
    def test_merge(self):
        a = MemCounters(l1_misses=1, bytes_dram=10)
        b = MemCounters(l1_misses=2, l3_misses=5, bytes_dram=20)
        a.merge(b)
        assert a.l1_misses == 3
        assert a.l3_misses == 5
        assert a.bytes_dram == 30
