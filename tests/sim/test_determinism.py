"""Determinism suite for the `repro.sim` kernel (all three engines).

Locks in two contracts:

1. **Reproducibility** — the same program and seed produce byte-identical
   traces, the same event count and the same final simulated time on every
   run, for the task runtime, the fork-join runtime and a coupled 2-rank
   cluster.
2. **Observer neutrality** — attaching bus subscribers never perturbs the
   simulation: results with and without observers are identical (the
   instrumentation bus is read-only by construction).
"""

from repro.cluster.cluster import Cluster
from repro.core import ProgramBuilder
from repro.core.program import CommKind, CommSpec
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime
from repro.runtime.parallel_for import (
    ForIteration,
    ForProgram,
    LoopSpec,
    ParallelForRuntime,
)
from repro.sim import EventCounter, InstrumentationBus, SimContext


def cfg(**kw):
    kw.setdefault("machine", tiny_test_machine(4))
    kw.setdefault("seed", 7)
    return RuntimeConfig(**kw)


def task_program(iterations=3, width=8):
    """A mixed-shape TDG: a source fan-out, chains, and a reduction."""
    b = ProgramBuilder("det", persistent_candidate=True)
    for _ in range(iterations):
        with b.iteration():
            b.task("src", out=["x"], flops=400.0)
            for i in range(width):
                b.task(f"mid{i}", inp=["x"], out=[("y", i)],
                       flops=300.0 + 10.0 * i,
                       footprint=[(i, 2048)])
            b.task("sink", inp=[("y", i) for i in range(width)],
                   flops=500.0)
            b.taskwait()
    return b.build()


def for_program(iterations=3):
    its = []
    for _ in range(iterations):
        its.append(ForIteration(phases=[
            LoopSpec(name="calc", flops=50_000.0, bytes_streamed=1 << 16),
            LoopSpec(name="apply", flops=20_000.0, bytes_streamed=1 << 14,
                     footprint=((0, 4096), (1, 4096))),
        ]))
    return ForProgram(its, name="det-for")


def pingpong(rank):
    peer = 1 - rank
    b = ProgramBuilder(f"pp-r{rank}")
    for _ in range(3):
        with b.iteration():
            if rank == 0:
                b.task("send", inout=["buf"], flops=100.0,
                       comm=CommSpec(CommKind.ISEND, 256, peer=peer, tag=0))
                b.task("recv", inout=["buf"], flops=100.0,
                       comm=CommSpec(CommKind.IRECV, 256, peer=peer, tag=1))
            else:
                b.task("recv", inout=["buf"], flops=100.0,
                       comm=CommSpec(CommKind.IRECV, 256, peer=peer, tag=0))
                b.task("send", inout=["buf"], flops=100.0,
                       comm=CommSpec(CommKind.ISEND, 256, peer=peer, tag=1))
    return b.build()


def run_task(bus=None):
    rt = TaskRuntime(task_program(), cfg(trace=True), bus=bus)
    res = rt.run()
    return res.trace.to_json_lines(), rt.engine.n_dispatched, res.makespan


def run_for(bus=None):
    rt = ParallelForRuntime(for_program(), cfg(), bus=bus)
    res = rt.run()
    return rt.engine.n_dispatched, res.makespan, tuple(res.work)


def run_cluster(bus=None):
    cluster = Cluster(2, ctx=SimContext(seed=7), bus=bus)
    res = cluster.run([pingpong(0), pingpong(1)],
                      [cfg(trace=True), cfg(trace=True)])
    traces = tuple(r.trace.to_json_lines() for r in res.results)
    return traces, res.n_events, res.makespan


class TestReproducibility:
    def test_task_runtime_bitwise_repeatable(self):
        assert run_task() == run_task()

    def test_parallel_for_bitwise_repeatable(self):
        assert run_for() == run_for()

    def test_cluster_bitwise_repeatable(self):
        assert run_cluster() == run_cluster()

    def test_seed_changes_stealing_runs(self):
        """Different seeds may reorder steals but never lose tasks."""
        a = TaskRuntime(task_program(), cfg(seed=1)).run()
        b = TaskRuntime(task_program(), cfg(seed=2)).run()
        assert a.n_tasks == b.n_tasks


class TestObserverNeutrality:
    def test_task_runtime_subscribers_do_not_perturb(self):
        bus = InstrumentationBus()
        counter = bus.attach(EventCounter())
        observed = run_task(bus=bus)
        assert observed == run_task()
        assert counter.counts["task_end"] > 0
        assert counter.counts["task_ready"] > 0
        assert counter.counts["barrier"] > 0

    def test_parallel_for_subscribers_do_not_perturb(self):
        bus = InstrumentationBus()
        counter = bus.attach(EventCounter())
        assert run_for(bus=bus) == run_for()
        assert counter.counts["barrier"] > 0

    def test_cluster_shared_bus_does_not_perturb(self):
        bus = InstrumentationBus()
        counter = bus.attach(EventCounter())
        assert run_cluster(bus=bus) == run_cluster()
        assert counter.counts["msg_post"] > 0
        assert counter.counts["msg_complete"] > 0

    def test_detached_subscriber_costs_nothing(self):
        bus = InstrumentationBus()
        counter = bus.attach(EventCounter())
        bus.detach(counter)
        assert bus.quiet
        run_task(bus=bus)
        assert all(v == 0 for v in counter.counts.values())


class TestRecorderNeutrality:
    """The full observability recorder is as neutral as any subscriber:
    attaching a :class:`repro.obs.TraceRecorder` leaves the DES trace
    byte-identical on every engine."""

    def test_task_runtime_recorder_neutral(self):
        from repro.obs import TraceRecorder

        bus = InstrumentationBus()
        recorder = bus.attach(TraceRecorder())
        assert run_task(bus=bus) == run_task()
        assert recorder.n_spans > 0
        assert recorder.counters.totals().tasks_created > 0

    def test_parallel_for_recorder_neutral(self):
        from repro.obs import TraceRecorder

        bus = InstrumentationBus()
        recorder = bus.attach(TraceRecorder())
        assert run_for(bus=bus) == run_for()
        assert recorder.barrier_kind  # fork-join barriers observed

    def test_cluster_recorder_neutral(self):
        from repro.obs import TraceRecorder

        bus = InstrumentationBus()
        recorder = bus.attach(TraceRecorder())
        assert run_cluster(bus=bus) == run_cluster()
        assert sorted(recorder.ranks) == [0, 1]
        assert recorder.comm_records  # MPI requests observed
        # Spans from both ranks, attributed via register events.
        assert {0, 1} <= set(recorder.span_rank)
