"""Unit tests for the struct-of-arrays task table."""

import math

import pytest

from repro.core.task import Task, TaskState
from repro.sim.table import COMPLETED, TaskTable


class TestAllocation:
    def test_new_rows_are_created_state(self):
        t = TaskTable()
        tid = t.new("a", flops=10.0)
        assert t.state[tid] == int(TaskState.CREATED)
        assert t.npred[tid] == 0
        assert t.succs[tid] == []
        assert math.isnan(t.created_at[tid])

    def test_footprint_normalized_to_chunks_and_modes(self):
        t = TaskTable()
        tid = t.new("a", footprint=[(1, 100), (2, 200, 0)])
        assert t.footprint[tid] == ((1, 100), (2, 200))
        assert len(t.fp_modes[tid]) == 2

    def test_new_stub_counts_redirects(self):
        t = TaskTable()
        s = t.new_stub()
        assert t.is_stub[s]
        assert t.stats.redirect_nodes == 1


class TestEdges:
    def test_add_edge_increments_npred(self):
        t = TaskTable()
        a, b = t.new("a"), t.new("b")
        assert t.add_edge(a, b, dedup=True)
        assert t.npred[b] == 1
        assert t.succs[a] == [b]
        assert t.stats.created == 1

    def test_self_edge_rejected(self):
        t = TaskTable()
        a = t.new("a")
        assert not t.add_edge(a, a, dedup=True)
        assert t.stats.created == 0

    def test_dedup_skips_adjacent_duplicate(self):
        t = TaskTable()
        a, b = t.new("a"), t.new("b")
        t.add_edge(a, b, dedup=True)
        assert not t.add_edge(a, b, dedup=True)
        assert t.stats.duplicates_skipped == 1
        assert t.npred[b] == 1

    def test_no_dedup_creates_duplicate_with_multiplicity(self):
        t = TaskTable()
        a, b = t.new("a"), t.new("b")
        t.add_edge(a, b, dedup=False)
        assert t.add_edge(a, b, dedup=False)
        assert t.stats.duplicates_created == 1
        assert t.npred[b] == 2  # two satisfies needed -> correctness without (b)

    def test_completed_pred_pruned(self):
        t = TaskTable()
        a, b = t.new("a"), t.new("b")
        t.state[a] = COMPLETED
        assert not t.add_edge(a, b, dedup=True)
        assert t.stats.pruned == 1
        assert t.npred[b] == 0

    def test_completed_pred_presat_when_persistent(self):
        t = TaskTable(persistent=True, prune_completed=False)
        a, b = t.new("a"), t.new("b")
        t.state[a] = COMPLETED
        assert t.add_edge(a, b, dedup=True)
        assert t.presat[b] == 1
        assert t.npred[b] == 0  # satisfied for the current iteration

    def test_iter_edges_and_count(self):
        t = TaskTable()
        a, b, c = t.new("a"), t.new("b"), t.new("c")
        t.add_edge(a, b, dedup=True)
        t.add_edge(a, c, dedup=True)
        t.add_edge(b, c, dedup=True)
        assert list(t.iter_edges()) == [(a, b), (a, c), (b, c)]
        assert t.n_edges == 3


class TestCsr:
    def test_build_csr_matches_adjacency(self):
        t = TaskTable()
        tids = [t.new(str(i)) for i in range(4)]
        t.add_edge(tids[0], tids[1], dedup=True)
        t.add_edge(tids[0], tids[2], dedup=True)
        t.add_edge(tids[2], tids[3], dedup=True)
        offsets, targets = t.build_csr()
        assert offsets == [0, 2, 2, 3, 3]
        assert targets == [1, 2, 3]
        for tid in tids:
            assert targets[offsets[tid]:offsets[tid + 1]] == t.succs[tid]


class TestReplay:
    def test_reset_for_replay_restores_counters_keeps_edges(self):
        t = TaskTable(persistent=True, prune_completed=False)
        a, b = t.new("a"), t.new("b")
        t.add_edge(a, b, dedup=True)
        t.npred_initial[a] = 0
        t.npred_initial[b] = 1
        for tid in (a, b):
            t.state[tid] = COMPLETED
            t.npred[tid] = 0
        t.reset_for_replay()
        assert t.state[b] != COMPLETED
        assert t.npred[b] == 1
        assert t.succs[a] == [b]  # the expensive part survives


class TestViews:
    def test_views_are_cached_identities(self):
        t = TaskTable()
        tid = t.new("a")
        assert t.view(tid) is t.view(tid)

    def test_view_reflects_table_state(self):
        t = TaskTable()
        tid = t.new("a", flops=5.0)
        v = t.view(tid)
        assert v.flops == 5.0
        v.flops = 9.0
        assert t.flops[tid] == 9.0

    def test_standalone_task_owns_private_table(self):
        v = Task(0, "solo", flops=3.0)
        assert v.table.n_tasks == 1
        assert v.flops == 3.0
        assert v.state == TaskState.CREATED

    def test_view_out_of_range_rejected(self):
        t = TaskTable()
        with pytest.raises(IndexError):
            t.view(0)
