"""Unit tests for the `repro.sim` event queue (batch push, guards)."""

import math

import pytest

from repro.sim import EventQueue


class TestPushGuards:
    def test_nan_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError, match="NaN"):
            q.push(math.nan, lambda: None)

    def test_past_time_rejected(self):
        q = EventQueue()
        q.push(5.0, lambda: None)
        q.run()
        with pytest.raises(ValueError, match="before current time"):
            q.push(4.0, lambda: None)

    def test_push_at_current_time_allowed(self):
        q = EventQueue()
        log = []
        q.push(1.0, lambda: q.push(1.0, log.append, "same-time"))
        q.run()
        assert log == ["same-time"]


class TestPushMany:
    def test_batch_preserves_tie_break_order(self):
        q = EventQueue()
        log = []
        q.push_many([(1.0, log.append, (i,)) for i in range(5)])
        q.push(1.0, log.append, 5)  # later push loses the tie
        q.run()
        assert log == [0, 1, 2, 3, 4, 5]

    def test_batch_interleaves_with_push_by_sequence(self):
        q = EventQueue()
        log = []
        q.push(1.0, log.append, "a")
        q.push_many([(1.0, log.append, ("b",)), (0.5, log.append, ("first",))])
        q.run()
        assert log == ["first", "a", "b"]

    def test_batch_returns_count(self):
        q = EventQueue()
        assert q.push_many([(1.0, lambda: None, ())] * 3) == 3
        assert q.push_many([]) == 0

    def test_batch_nan_rejected_and_seq_consistent(self):
        q = EventQueue()
        log = []
        with pytest.raises(ValueError, match="NaN"):
            q.push_many([(1.0, log.append, ("kept",)),
                         (math.nan, log.append, ("bad",))])
        # The valid prefix was pushed; later pushes still tie-break after it.
        q.push(1.0, log.append, "later")
        q.run()
        assert log == ["kept", "later"]


class TestAccounting:
    def test_n_dispatched_counts_all_events(self):
        q = EventQueue()
        for i in range(4):
            q.push(float(i), lambda: None)
        q.run()
        assert q.n_dispatched == 4

    def test_n_dispatched_written_back_on_callback_error(self):
        q = EventQueue()
        q.push(1.0, lambda: None)

        def boom():
            raise RuntimeError("boom")

        q.push(2.0, boom)
        with pytest.raises(RuntimeError, match="boom"):
            q.run()
        assert q.n_dispatched == 2

    def test_max_events_budget_enforced(self):
        q = EventQueue()

        def respawn():
            q.push(q.now + 1.0, respawn)

        q.push(0.0, respawn)
        with pytest.raises(RuntimeError, match="event budget"):
            q.run(max_events=10)
