"""Unit tests for the instrumentation bus."""

import pytest

from repro.sim import InstrumentationBus
from repro.sim.bus import HOOKS


class TestSubscribe:
    def test_empty_hooks_are_none(self):
        bus = InstrumentationBus()
        for name in HOOKS:
            assert getattr(bus, name) is None
        assert bus.quiet

    def test_subscribe_builds_tuple(self):
        bus = InstrumentationBus()
        seen = []
        bus.subscribe("task_end", seen.append)
        assert bus.task_end == (seen.append,)
        assert not bus.quiet

    def test_emission_order_is_subscription_order(self):
        bus = InstrumentationBus()
        log = []
        bus.subscribe("barrier", lambda kind, t: log.append("a"))
        bus.subscribe("barrier", lambda kind, t: log.append("b"))
        for cb in bus.barrier:
            cb("taskwait", 0.0)
        assert log == ["a", "b"]

    def test_unsubscribe(self):
        bus = InstrumentationBus()
        fn = bus.subscribe("task_start", lambda *a: None)
        bus.unsubscribe("task_start", fn)
        assert bus.task_start is None
        bus.unsubscribe("task_start", fn)  # idempotent

    def test_unknown_hook_rejected(self):
        bus = InstrumentationBus()
        with pytest.raises(ValueError, match="unknown hook"):
            bus.subscribe("task_done", lambda *a: None)


class TestAttach:
    def test_attach_binds_all_on_methods(self):
        class Observer:
            def __init__(self):
                self.ends = []
                self.barriers = []

            def on_task_end(self, table, tid, worker, t0, t1):
                self.ends.append(tid)

            def on_barrier(self, kind, time):
                self.barriers.append(kind)

        bus = InstrumentationBus()
        obs = bus.attach(Observer())
        assert bus.task_end and bus.barrier
        assert bus.task_ready is None
        bus.detach(obs)
        assert bus.quiet

    def test_attach_without_hooks_rejected(self):
        bus = InstrumentationBus()
        with pytest.raises(TypeError, match="no on_<hook> method"):
            bus.attach(object())
