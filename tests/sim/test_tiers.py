"""Unit tests for the fidelity ladder (repro.sim.tiers).

Covers the Simulator protocol, the analytic bounds structure, replay
scheduling policies, the unified RunResult shape, and the rejection
paths (bodies, accelerators, missing program, costless persistent
artifacts).
"""

from __future__ import annotations

import pytest

from repro.accel import AcceleratorSpec
from repro.core import OptimizationSet
from repro.core.compiled import compile_program
from repro.core.program import IterationSpec, Program, TaskSpec
from repro.core.task import DepMode
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime
from repro.sim.tiers import (
    DEFAULT_FIDELITY,
    FIDELITIES,
    AnalyticSimulator,
    DesSimulator,
    ReplaySimulator,
    Simulator,
    get_simulator,
    simulate,
    tier_weights,
)

FLOPS = 4000.0


def diamond_program() -> Program:
    """t0 -> (t1, t2) -> t3, classic fork-join diamond."""
    specs = [
        TaskSpec(name="t0", depends=((0, DepMode.OUT),), flops=FLOPS),
        TaskSpec(
            name="t1",
            depends=((0, DepMode.IN), (1, DepMode.OUT)),
            flops=FLOPS,
        ),
        TaskSpec(
            name="t2",
            depends=((0, DepMode.IN), (2, DepMode.OUT)),
            flops=FLOPS,
        ),
        TaskSpec(
            name="t3",
            depends=((1, DepMode.IN), (2, DepMode.IN)),
            flops=FLOPS,
        ),
    ]
    return Program([IterationSpec(index=0, tasks=specs)])


def chain_program(n: int = 16) -> Program:
    specs = [
        TaskSpec(name=f"c{i}", depends=((0, DepMode.INOUT),), flops=FLOPS)
        for i in range(n)
    ]
    return Program([IterationSpec(index=0, tasks=specs)])


def wide_program(n: int = 32) -> Program:
    specs = [
        TaskSpec(name=f"w{i}", depends=((i, DepMode.OUT),), flops=FLOPS)
        for i in range(n)
    ]
    return Program([IterationSpec(index=0, tasks=specs)])


def persistent_program(iters: int = 3) -> Program:
    specs = [
        TaskSpec(name=f"p{i}", depends=((i % 3, DepMode.INOUT),), flops=FLOPS)
        for i in range(9)
    ]
    return Program.from_template(specs, iters)


def config(threads: int = 4, **kw) -> RuntimeConfig:
    kw.setdefault("opts", OptimizationSet.parse("abc"))
    return RuntimeConfig(
        machine=tiny_test_machine(max(threads, 4)), n_threads=threads, **kw
    )


def compiled_for(program: Program, cfg: RuntimeConfig):
    return compile_program(program, cfg.opts, costs=cfg.discovery)


class TestRegistry:
    def test_fidelities_ladder(self):
        assert FIDELITIES == ("analytic", "replay", "des")
        assert DEFAULT_FIDELITY == "des"

    def test_get_simulator_each_tier(self):
        for f in FIDELITIES:
            sim = get_simulator(f)
            assert sim.fidelity == f
            assert isinstance(sim, Simulator)

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="unknown fidelity 'exact'"):
            get_simulator("exact")
        with pytest.raises(ValueError, match="expected one of"):
            simulate(None, None, fidelity="")

    def test_protocol_runtime_checkable(self):
        assert isinstance(AnalyticSimulator(), Simulator)
        assert isinstance(ReplaySimulator(), Simulator)
        assert isinstance(DesSimulator(), Simulator)


class TestUnifiedResult:
    """Every tier emits the same RunResult shape, absences explicit."""

    @pytest.mark.parametrize("fidelity", FIDELITIES)
    def test_extra_contract(self, fidelity):
        prog = diamond_program()
        cfg = config()
        art = compiled_for(prog, cfg)
        res = simulate(art, cfg, fidelity=fidelity, program=prog)
        assert res.extra["fidelity"] == fidelity
        assert "bounds" in res.extra
        if fidelity == "analytic":
            assert isinstance(res.extra["bounds"], dict)
        else:
            assert res.extra["bounds"] is None
        assert res.n_threads == 4
        assert res.n_tasks == 4
        assert res.makespan > 0
        assert 0.0 < res.utilization <= 1.0

    @pytest.mark.parametrize("fidelity", ["analytic", "replay"])
    def test_cheap_tiers_reference_artifact(self, fidelity):
        prog = diamond_program()
        cfg = config()
        art = compiled_for(prog, cfg)
        res = simulate(art, cfg, fidelity=fidelity)
        meta = res.extra["compiled_tdg"]
        assert meta["key"] == art.key
        assert meta["n_tasks"] == art.n_tasks

    def test_work_split_sums_to_total(self):
        prog = wide_program()
        cfg = config()
        art = compiled_for(prog, cfg)
        res = simulate(art, cfg, fidelity="replay")
        assert len(res.work) == cfg.threads
        assert res.work.sum() == pytest.approx(res.work[0] * cfg.threads)


class TestAnalytic:
    BOUND_KEYS = {
        "t1", "t_inf", "tn_lower", "tn_upper", "discovery_total",
        "discovery_lower", "makespan_lower", "makespan_upper", "depth",
        "avg_parallelism", "rounds",
    }

    def test_bounds_structure(self):
        prog = diamond_program()
        cfg = config()
        b = simulate(compiled_for(prog, cfg), cfg, fidelity="analytic").extra[
            "bounds"
        ]
        assert set(b) == self.BOUND_KEYS
        assert b["t1"] >= b["t_inf"] > 0
        assert b["tn_lower"] <= b["tn_upper"]
        assert b["makespan_lower"] <= b["makespan_upper"]
        assert b["avg_parallelism"] >= 1.0
        assert b["rounds"] == 1

    def test_shape_metrics(self):
        cfg = config()
        chain = simulate(
            compiled_for(chain_program(16), cfg), cfg, fidelity="analytic"
        ).extra["bounds"]
        wide = simulate(
            compiled_for(wide_program(16), cfg), cfg, fidelity="analytic"
        ).extra["bounds"]
        assert chain["depth"] == 16
        assert wide["depth"] == 1
        # A chain has no parallelism; 16 independent tasks have plenty.
        assert chain["avg_parallelism"] == pytest.approx(1.0)
        assert wide["avg_parallelism"] > 4.0
        # T_inf of the chain equals its T1 (every task is on the path).
        assert chain["t_inf"] == pytest.approx(chain["t1"])

    def test_persistent_rounds(self):
        prog = persistent_program(3)
        cfg = config(opts=OptimizationSet.parse("abcp"))
        b = simulate(compiled_for(prog, cfg), cfg, fidelity="analytic").extra[
            "bounds"
        ]
        assert b["rounds"] == 3

    def test_more_threads_tighten_nothing_upward(self):
        prog = wide_program(32)
        cfg1, cfg8 = config(1), config(8)
        b1 = simulate(compiled_for(prog, cfg1), cfg1, fidelity="analytic")
        b8 = simulate(compiled_for(prog, cfg8), cfg8, fidelity="analytic")
        assert b8.extra["bounds"]["tn_lower"] <= b1.extra["bounds"]["tn_lower"]


class TestReplay:
    def test_completes_all_tasks(self):
        prog = persistent_program(3)
        cfg = config(opts=OptimizationSet.parse("abcp"))
        res = simulate(compiled_for(prog, cfg), cfg, fidelity="replay")
        assert res.n_tasks == 9 * 3

    def test_fifo_and_lifo_both_run(self):
        prog = diamond_program()
        for sched in ("lifo-df", "fifo-bf"):
            cfg = config(scheduler=sched)
            res = simulate(compiled_for(prog, cfg), cfg, fidelity="replay")
            assert res.n_tasks == 4
            assert res.makespan > 0

    def test_more_workers_no_slower(self):
        prog = wide_program(32)
        cfg = config(1)
        art = compiled_for(prog, cfg)
        m1 = ReplaySimulator(workers_override=1).simulate(art, cfg).makespan
        m8 = ReplaySimulator(workers_override=8).simulate(art, cfg).makespan
        assert m8 <= m1 + 1e-12

    def test_workers_override_reported(self):
        prog = diamond_program()
        cfg = config()
        res = ReplaySimulator(workers_override=64).simulate(
            compiled_for(prog, cfg), cfg
        )
        assert res.extra["replay_workers"] == 64

    def test_non_overlapped_serializes_discovery(self):
        prog = wide_program(16)
        cfg = config(non_overlapped=True)
        res = simulate(compiled_for(prog, cfg), cfg, fidelity="replay")
        d0, d1 = res.discovery_span
        e0, _ = res.execution_span
        assert d1 <= e0 + 1e-12
        assert res.discovery_busy == pytest.approx(d1 - d0)


class TestOrdering:
    """The ladder's defining invariant on a fixed graph."""

    @pytest.mark.parametrize(
        "make", [diamond_program, chain_program, wide_program]
    )
    def test_analytic_brackets_replay_and_des(self, make):
        prog = make()
        cfg = config()
        art = compiled_for(prog, cfg)
        bounds = simulate(art, cfg, fidelity="analytic").extra["bounds"]
        replay = simulate(art, cfg, fidelity="replay").makespan
        des = simulate(art, cfg, fidelity="des", program=prog).makespan
        lo, hi = bounds["makespan_lower"], bounds["makespan_upper"]
        assert lo <= replay * (1 + 1e-9) and replay <= hi * (1 + 1e-9)
        assert lo <= des * (1 + 1e-9) and des <= hi * (1 + 1e-9)

    def test_infinite_workers_at_least_span(self):
        prog = diamond_program()
        cfg = config()
        art = compiled_for(prog, cfg)
        t_inf = simulate(art, cfg, fidelity="analytic").extra["bounds"]["t_inf"]
        ideal = ReplaySimulator(workers_override=4096).simulate(art, cfg)
        assert ideal.makespan >= t_inf - 1e-12


class TestRejections:
    def test_execute_bodies_rejected(self):
        prog = diamond_program()
        cfg = config(execute_bodies=True)
        art = compile_program(prog, cfg.opts, costs=cfg.discovery)
        for f in ("analytic", "replay"):
            with pytest.raises(ValueError, match="cannot execute task bodies"):
                simulate(art, cfg, fidelity=f)

    def test_accelerator_rejected(self):
        prog = diamond_program()
        cfg = config(accelerator=AcceleratorSpec())
        art = compile_program(prog, cfg.opts, costs=cfg.discovery)
        for f in ("analytic", "replay"):
            with pytest.raises(ValueError, match="does not model accelerators"):
                simulate(art, cfg, fidelity=f)

    def test_des_requires_program(self):
        prog = diamond_program()
        cfg = config()
        art = compiled_for(prog, cfg)
        with pytest.raises(ValueError, match="pass program="):
            simulate(art, cfg, fidelity="des")

    def test_persistent_artifact_needs_costs(self):
        prog = persistent_program(3)
        cfg = config(opts=OptimizationSet.parse("abcp"))
        art = compile_program(prog, cfg.opts)  # no costs stamped
        with pytest.raises(ValueError, match="no iteration_costs"):
            simulate(art, cfg, fidelity="replay")


class TestTierWeights:
    def test_stub_rows_are_zero(self):
        # inoutset groups close through stub tasks.
        specs = [
            TaskSpec(
                name=f"g{i}", depends=((0, DepMode.INOUTSET),), flops=FLOPS
            )
            for i in range(4)
        ] + [TaskSpec(name="read", depends=((0, DepMode.IN),), flops=FLOPS)]
        prog = Program([IterationSpec(index=0, tasks=specs)])
        cfg = config()
        art = compiled_for(prog, cfg)
        tw = tier_weights(art, cfg)
        assert art.n_stubs > 0
        for tid in art.stub_tids:
            assert tw.body[tid] == 0.0
            assert tw.creation[tid] == 0.0
            assert tw.replay[tid] == 0.0

    def test_body_bracket(self):
        prog = diamond_program()
        cfg = config()
        art = compiled_for(prog, cfg)
        tw = tier_weights(art, cfg)
        w = cfg.threads
        assert (tw.body_lo <= tw.body + tw.mem_shared * w + 1e-15).all()
        assert (tw.body + tw.mem_shared * w <= tw.body_hi + 1e-15).all()
        assert (tw.creation_lo <= tw.creation + 1e-15).all()

    def test_des_agrees_with_tier_makespan_on_trivial_chain(self):
        # On a 1-thread chain with abc opts both models are exact: same
        # creation costs, same bodies, fully serial.
        prog = chain_program(8)
        cfg = config(1)
        art = compiled_for(prog, cfg)
        replay = simulate(art, cfg, fidelity="replay").makespan
        des = TaskRuntime(prog, cfg).run().makespan
        assert replay == pytest.approx(des, rel=0.02)
