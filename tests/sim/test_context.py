"""Unit tests for SimContext."""

from repro.sim import EventQueue, InstrumentationBus, SimContext


class TestContext:
    def test_defaults(self):
        ctx = SimContext()
        assert isinstance(ctx.engine, EventQueue)
        assert isinstance(ctx.bus, InstrumentationBus)
        assert ctx.now == 0.0

    def test_joins_existing_engine(self):
        q = EventQueue()
        ctx = SimContext(q)
        assert ctx.engine is q
        q.push(2.5, lambda: None)
        q.run()
        assert ctx.now == 2.5

    def test_rng_streams_are_deterministic(self):
        a = SimContext(seed=3)
        b = SimContext(seed=3)
        assert a.rng_for(1).integers(1 << 30) == b.rng_for(1).integers(1 << 30)

    def test_rng_streams_are_independent(self):
        ctx = SimContext(seed=3)
        draws0 = ctx.rng_for(0).integers(1 << 30, size=4)
        draws1 = ctx.rng_for(1).integers(1 << 30, size=4)
        assert list(draws0) != list(draws1)
