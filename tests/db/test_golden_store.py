"""Acceptance gate: the golden campaign through both store backends.

The 19-spec golden set (``repro.campaign.crosscheck.golden_specs``) runs
once into the JSON ``ResultCache`` and once into a ``DbResultStore``;
both backends must hand back bit-identical RunResults on cache hits, and
the SQL rows must mirror the result documents they were derived from.
"""

from __future__ import annotations

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.crosscheck import golden_specs
from repro.campaign.engine import run_campaign
from repro.db import CampaignDB, DbResultStore
from repro.util.serde import canonical_json


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    root = tmp_path_factory.mktemp("golden")
    specs = golden_specs()
    json_out = run_campaign(specs, cache=ResultCache(root / "json"))
    db_out = run_campaign(specs, store=root / "store.sqlite", campaign="g")
    assert json_out.ok and db_out.ok
    return root, specs, json_out, db_out


class TestGoldenStoreParity:
    def test_executed_results_bitwise_equal(self, golden):
        _, _, json_out, db_out = golden
        a = [canonical_json(r.to_dict()) for r in json_out.results]
        b = [canonical_json(r.to_dict()) for r in db_out.results]
        assert a == b

    def test_cache_hits_bitwise_equal_across_backends(self, golden):
        root, specs, _, first = golden
        cache = ResultCache(root / "json")
        store = DbResultStore(root / "store.sqlite")
        for spec in specs:
            from_json = cache.get(spec)
            from_db = store.get(spec)
            assert from_json is not None and from_db is not None
            assert (canonical_json(from_db.to_dict())
                    == canonical_json(from_json.to_dict()))

    def test_resume_is_all_hits_and_adds_no_rows(self, golden):
        root, specs, _, _ = golden
        path = root / "store.sqlite"
        with CampaignDB(path) as db:
            before = db.table_counts()
        out = run_campaign(specs, store=path, campaign="g")
        assert out.n_cached == len(specs) and out.n_executed == 0
        with CampaignDB(path) as db:
            assert db.table_counts() == before

    def test_rows_mirror_result_docs(self, golden):
        root, specs, _, db_out = golden
        with CampaignDB(root / "store.sqlite") as db:
            _, rows = db.query(
                "SELECT key, makespan, discovery_busy, n_tasks FROM runs "
                "ORDER BY key")
        by_key = {rec.spec.key: rec.result for rec in db_out.records}
        assert sorted(by_key) == [r[0] for r in rows]
        for key, makespan, discovery, n_tasks in rows:
            res = by_key[key]
            assert makespan == res.makespan
            assert discovery == res.discovery_busy
            assert n_tasks == res.n_tasks
