"""CampaignDB / DbResultStore: cache contract, WAL concurrency, resume."""

from __future__ import annotations

import sqlite3

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.engine import run_campaign
from repro.campaign.runner import run_experiment
from repro.campaign.spec import ExperimentSpec
from repro.db import (
    CampaignDB,
    DbResultStore,
    SCHEMA_VERSION,
    SchemaError,
    open_store,
)
from repro.memory.machine import tiny_test_machine
from repro.runtime import presets
from repro.util.serde import canonical_json

CFG = presets.mpc_omp(tiny_test_machine(4), n_threads=4)


def spec(**kw) -> ExperimentSpec:
    kw.setdefault("app", "lulesh")
    kw.setdefault("config", CFG)
    kw.setdefault("params", {"s": 6, "iterations": 1, "tpl": 2})
    return ExperimentSpec(**kw)


SPECS = [spec().with_params(tpl=t) for t in (2, 3, 4, 6)]


def fingerprints(out) -> list[str]:
    return [canonical_json(r.to_dict()) for r in out.results]


class TestDbResultStore:
    def test_miss_then_hit_bitwise(self, tmp_path):
        store = DbResultStore(tmp_path / "s.sqlite")
        s = spec()
        assert store.get(s) is None
        assert not store.contains(s)
        res = run_experiment(s)
        store.put(s, res)
        assert store.contains(s)
        got = store.get(s)
        assert canonical_json(got.to_dict()) == canonical_json(res.to_dict())

    def test_len_and_keys_sorted(self, tmp_path):
        store = DbResultStore(tmp_path / "s.sqlite")
        assert len(store) == 0
        specs = [spec(seed=i) for i in range(3)]
        for s in specs:
            store.put(s, run_experiment(s))
        assert len(store) == 3
        assert store.keys() == sorted(s.key for s in specs)

    def test_error_lifecycle(self, tmp_path):
        store = DbResultStore(tmp_path / "s.sqlite")
        s = spec()
        assert store.get_error(s) is None
        store.put_error(s, "boom")
        assert store.get_error(s) == "boom"
        # a successful result clears the stale failure record
        store.put(s, run_experiment(s))
        assert store.get_error(s) is None

    def test_put_stamps_campaign_column(self, tmp_path):
        db = CampaignDB(tmp_path / "s.sqlite")
        s = spec()
        DbResultStore(db, campaign="alpha").put(s, run_experiment(s))
        _, rows = db.query("SELECT campaign FROM runs WHERE key = ?", (s.key,))
        assert rows == [("alpha",)]

    def test_same_keys_as_json_cache(self, tmp_path):
        # the content-addressed key is the spec's, not the backend's
        store = DbResultStore(tmp_path / "s.sqlite")
        cache = ResultCache(tmp_path / "json")
        s = spec()
        res = run_experiment(s)
        store.put(s, res)
        cache.put(s, res)
        assert store.keys() == [s.key]
        assert cache.get(s) is not None and store.get(s) is not None


class TestOpenStore:
    def test_sqlite_suffix_dispatches_to_db(self, tmp_path):
        st = open_store(str(tmp_path / "x.sqlite"))
        assert isinstance(st, DbResultStore)

    def test_directory_dispatches_to_json_cache(self, tmp_path):
        st = open_store(str(tmp_path / "cachedir"))
        assert isinstance(st, ResultCache)

    def test_existing_db_file_dispatches_by_content(self, tmp_path):
        path = tmp_path / "oddname"
        with CampaignDB(path) as db:
            db.conn  # create + stamp
        st = open_store(str(path))
        assert isinstance(st, DbResultStore)


class TestSchemaGate:
    def test_foreign_schema_stamp_rejected(self, tmp_path):
        path = tmp_path / "alien.sqlite"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
        conn.execute("INSERT INTO meta VALUES ('schema', 'otter.db')")
        conn.execute("INSERT INTO meta VALUES ('schema_version', '1')")
        conn.commit()
        conn.close()
        with pytest.raises(SchemaError, match="otter"), CampaignDB(path) as db:
            db.conn

    def test_non_sqlite_file_rejected_on_read(self, tmp_path):
        path = tmp_path / "notes.sqlite"
        path.write_text("not a database")
        with pytest.raises(SchemaError), CampaignDB(path) as db:
            db.read

    def test_newer_store_rejected(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with CampaignDB(path) as db:
            db.conn
            db.conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
            db.conn.commit()
        with pytest.raises(SchemaError, match="newer"), CampaignDB(path) as db:
            db.conn

    def test_version_gap_without_migration_rejected(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with CampaignDB(path) as db:
            db.conn
            db.conn.execute(
                "UPDATE meta SET value = '0' WHERE key = 'schema_version'"
            )
            db.conn.commit()
        with pytest.raises(SchemaError, match="migration"), CampaignDB(path) as db:
            db.conn

    def test_read_connection_requires_existing_file(self, tmp_path):
        with pytest.raises(SchemaError, match="no such store"):
            with CampaignDB(tmp_path / "missing.sqlite") as db:
                db.read

    def test_sql_queries_are_read_only(self, tmp_path):
        path = tmp_path / "s.sqlite"
        DbResultStore(path).put(spec(), run_experiment(spec()))
        with CampaignDB(path) as db:
            with pytest.raises(sqlite3.OperationalError):
                db.query("INSERT INTO meta (key, value) VALUES ('x', 'y')")


class TestCampaignIntegration:
    def test_store_as_campaign_cache(self, tmp_path):
        path = tmp_path / "s.sqlite"
        first = run_campaign(SPECS, store=path, campaign="c1")
        assert first.ok and first.n_executed == len(SPECS)
        second = run_campaign(SPECS, store=path, campaign="c1")
        assert second.n_cached == len(SPECS) and second.n_executed == 0
        assert fingerprints(first) == fingerprints(second)

    def test_store_and_cache_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            run_campaign(SPECS[:1], cache=ResultCache(tmp_path),
                         store=tmp_path / "s.sqlite")

    def test_two_worker_campaign_into_one_store(self, tmp_path):
        # multi-process writers share the WAL database as IPC channel
        path = tmp_path / "s.sqlite"
        serial = run_campaign(SPECS)
        parallel = run_campaign(SPECS, jobs=2, store=path)
        assert parallel.ok
        assert fingerprints(parallel) == fingerprints(serial)
        with CampaignDB(path) as db:
            _, rows = db.query("SELECT COUNT(*) FROM runs")
        assert rows[0][0] == len(SPECS)

    def test_resume_from_partial_store(self, tmp_path):
        path = tmp_path / "s.sqlite"
        run_campaign(SPECS[:2], store=path)
        out = run_campaign(SPECS, store=path)
        assert out.n_cached == 2 and out.n_executed == len(SPECS) - 2

    def test_resume_adds_zero_rows(self, tmp_path):
        path = tmp_path / "s.sqlite"
        run_campaign(SPECS, store=path, jobs=2)
        with CampaignDB(path) as db:
            before = db.table_counts()
        out = run_campaign(SPECS, store=path, jobs=2)
        assert out.n_cached == len(SPECS)
        with CampaignDB(path) as db:
            assert db.table_counts() == before
