"""Property tests: recorder columns and results survive the store."""

from __future__ import annotations

import math
from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.campaign.runner import run_experiment
from repro.campaign.spec import ExperimentSpec
from repro.db import CampaignDB, DbResultStore, read_trace, write_trace
from repro.memory.machine import tiny_test_machine
from repro.obs.counters import IterationCounters
from repro.obs.recorder import TraceRecorder
from repro.profiler.trace import CommRecord
from repro.runtime import presets
from repro.util.serde import canonical_json

CFG = presets.mpc_omp(tiny_test_machine(4), n_threads=4)

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
small_int = st.integers(min_value=0, max_value=50)

spans_st = st.lists(
    st.tuples(
        small_int,  # tid
        st.sampled_from(["alpha", "beta", "gamma[3]"]),  # name
        st.integers(min_value=-2, max_value=40),  # loop
        st.integers(min_value=-1, max_value=8),  # iteration
        st.integers(min_value=0, max_value=3),  # rank
        st.integers(min_value=0, max_value=7),  # worker
        finite,  # start
        finite,  # end
    ),
    max_size=40,
)

barriers_st = st.lists(
    st.tuples(st.sampled_from(["taskwait", "persistent"]), finite), max_size=8
)

comms_st = st.lists(
    st.tuples(
        st.sampled_from(["isend", "irecv", "iallreduce"]),
        st.integers(min_value=0, max_value=3),  # rank
        st.integers(min_value=-1, max_value=3),  # peer
        st.integers(min_value=0, max_value=1 << 30),  # nbytes
        finite,  # post
        st.one_of(st.none(), finite),  # complete (None -> in flight)
        st.integers(min_value=-1, max_value=8),
    ),
    max_size=10,
)

counters_st = st.dictionaries(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.integers(min_value=-1, max_value=8)),
    st.tuples(small_int, small_int, finite),
    max_size=6,
)


def synthetic_recorder(spans, barriers, comms, counters) -> TraceRecorder:
    rec = TraceRecorder()
    for tid, name, loop, it, rank, worker, start, end in spans:
        rec.span_tid.append(tid)
        rec.span_name.append(rec.names(name))
        rec.span_loop.append(loop)
        rec.span_iteration.append(it)
        rec.span_rank.append(rank)
        rec.span_worker.append(worker)
        rec.span_start.append(start)
        rec.span_end.append(end)
    for kind, time in barriers:
        rec.barrier_kind.append(kind)
        rec.barrier_time.append(time)
    for kind, rank, peer, nbytes, post, complete, it in comms:
        rec.comm_records.append(CommRecord(
            kind=kind, rank=rank, peer=peer, nbytes=nbytes, post_time=post,
            complete_time=math.nan if complete is None else complete,
            iteration=it,
        ))
    for (rank, it), (created, edges, cost) in counters.items():
        rec.counters.rows[rank, it] = IterationCounters(
            tasks_created=created, edges_created=edges, creation_cost=cost)
    return rec


class TestTraceRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(spans=spans_st, barriers=barriers_st, comms=comms_st,
           counters=counters_st)
    def test_columns_survive(self, tmp_path_factory, spans, barriers, comms,
                             counters):
        rec = synthetic_recorder(spans, barriers, comms, counters)
        path = tmp_path_factory.mktemp("db") / "t.sqlite"
        with CampaignDB(path) as db:
            write_trace(db, "r1", rec)
            back = read_trace(db, "r1")
        assert back.span_tid == rec.span_tid
        assert back.name_table() == rec.name_table()
        assert back.span_name == rec.span_name
        assert back.span_loop == rec.span_loop
        assert back.span_iteration == rec.span_iteration
        assert back.span_rank == rec.span_rank
        assert back.span_worker == rec.span_worker
        assert back.span_start == rec.span_start
        assert back.span_end == rec.span_end
        assert back.barrier_kind == rec.barrier_kind
        assert back.barrier_time == rec.barrier_time
        # NaN != NaN, and SQLite normalizes -0.0 REALs to +0.0, so
        # compare comm records field-wise with NaN-aware equality
        assert len(back.comm_records) == len(rec.comm_records)
        for a, b in zip(back.comm_records, rec.comm_records):
            for f, x in a.to_dict().items():
                y = b.to_dict()[f]
                if isinstance(x, float) and math.isnan(x):
                    assert math.isnan(y), (f, x, y)
                else:
                    assert x == y, (f, x, y)
        assert back.counters.rows == rec.counters.rows

    def test_rewrite_replaces_not_appends(self, tmp_path):
        rec = synthetic_recorder(
            [(1, "a", 0, 0, 0, 0, 0.0, 1.0)], [], [], {})
        with CampaignDB(tmp_path / "t.sqlite") as db:
            write_trace(db, "r1", rec)
            write_trace(db, "r1", rec)
            _, rows = db.query("SELECT COUNT(*) FROM spans")
        assert rows[0][0] == 1


class TestResultRoundTrip:
    BASE = run_experiment(ExperimentSpec(
        app="lulesh", config=CFG,
        params={"s": 6, "iterations": 1, "tpl": 2}))

    @settings(max_examples=20, deadline=None)
    @given(makespan=finite, discovery=finite, n_tasks=small_int)
    def test_scalar_fields_bitwise(self, tmp_path_factory, makespan,
                                   discovery, n_tasks):
        # mutate the scalar columns the runs table mirrors; the doc and
        # the row must agree bit-for-bit after a put/get cycle
        res = replace(self.BASE, makespan=makespan, discovery_busy=discovery,
                      n_tasks=n_tasks)
        spec = ExperimentSpec(app="lulesh", config=CFG,
                              params={"s": 6, "iterations": 1, "tpl": 2},
                              seed=int(abs(hash((makespan, discovery)))) % 997)
        path = tmp_path_factory.mktemp("db") / "s.sqlite"
        store = DbResultStore(path)
        store.put(spec, res)
        got = store.get(spec)
        assert canonical_json(got.to_dict()) == canonical_json(res.to_dict())
        _, rows = store.db.query(
            "SELECT makespan, discovery_busy, n_tasks FROM runs WHERE key=?",
            (spec.key,))
        assert rows == [(makespan, discovery, n_tasks)]
