"""Stores are diffable artifacts: identical inputs, identical bytes."""

from __future__ import annotations

from repro.campaign.engine import run_campaign
from repro.campaign.spec import ExperimentSpec
from repro.db import CampaignDB, store_profile
from repro.memory.machine import tiny_test_machine
from repro.obs.profile import profile_spec
from repro.runtime import presets

CFG = presets.mpc_omp(tiny_test_machine(4), n_threads=4)

SPECS = [
    ExperimentSpec(app="lulesh", config=CFG,
                   params={"s": 6, "iterations": 1, "tpl": t})
    for t in (2, 4, 8)
]


def dump(path) -> str:
    with CampaignDB(path) as db:
        return db.dump()


class TestDumpDeterminism:
    def test_identical_campaigns_identical_dumps(self, tmp_path):
        a, b = tmp_path / "a.sqlite", tmp_path / "b.sqlite"
        run_campaign(SPECS, store=a, campaign="x")
        run_campaign(SPECS, store=b, campaign="x")
        assert dump(a) == dump(b)

    def test_worker_interleaving_does_not_change_bytes(self, tmp_path):
        # WITHOUT ROWID + explicit keys: rows dump in key order no matter
        # which worker process inserted them first
        a, b = tmp_path / "a.sqlite", tmp_path / "b.sqlite"
        run_campaign(SPECS, store=a, campaign="x")
        run_campaign(SPECS, jobs=3, store=b, campaign="x")
        assert dump(a) == dump(b)

    def test_profile_store_dumps_identically(self, tmp_path):
        a, b = tmp_path / "a.sqlite", tmp_path / "b.sqlite"
        for path in (a, b):
            report = profile_spec(SPECS[0])
            with CampaignDB(path) as db:
                store_profile(db, report, campaign="x")
        assert dump(a) == dump(b)
