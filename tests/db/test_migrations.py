"""The schema migration chain, exercised against a committed v1 store.

``tests/db/fixtures/golden_v1.sqlite`` was produced by code at schema
version 1 (see ``fixtures/make_golden_v1.py``) and is committed so the
v1 -> v2 upgrade path is tested against a *real* old store forever, not
against a synthetic one rebuilt by current code.  The contract under
test is the schema module's policy note: additive changes migrate in
place losslessly and deterministically; read-only opens never migrate;
a gap in the chain is a loud error, never a misread.
"""

from __future__ import annotations

import shutil
import sqlite3
from pathlib import Path

import pytest

from repro.db import CampaignDB
from repro.db.schema import (
    SCHEMA_VERSION,
    SchemaError,
    check_schema,
    stored_version,
)

FIXTURE = Path(__file__).parent / "fixtures" / "golden_v1.sqlite"


def _raw_version(path: Path) -> int:
    """Read the stamped version without opening through CampaignDB."""
    conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    try:
        (value,) = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        return int(value)
    finally:
        conn.close()


def _raw_rows(path: Path, sql: str) -> list:
    conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    try:
        return conn.execute(sql).fetchall()
    finally:
        conn.close()


@pytest.fixture
def v1_copy(tmp_path) -> Path:
    copy = tmp_path / "store.sqlite"
    shutil.copyfile(FIXTURE, copy)
    return copy


class TestGoldenFixture:
    def test_fixture_is_still_version_1(self):
        # If this fails someone regenerated the fixture with current
        # code — the whole point of committing it is that they must not.
        assert _raw_version(FIXTURE) == 1

    def test_fixture_has_data_to_lose(self):
        runs = _raw_rows(FIXTURE, "SELECT COUNT(*) FROM runs")[0][0]
        spans = _raw_rows(FIXTURE, "SELECT COUNT(*) FROM spans")[0][0]
        assert runs >= 1 and spans >= 1


class TestUpgrade:
    def test_write_open_migrates_to_current(self, v1_copy):
        with CampaignDB(v1_copy) as db:
            db.conn  # opening for writing runs the migration gate
        assert _raw_version(v1_copy) == SCHEMA_VERSION

    def test_upgrade_preserves_every_row(self, v1_copy):
        tables = ("specs", "runs", "spans", "barriers", "comms", "counters")
        before = {
            t: _raw_rows(v1_copy, f"SELECT * FROM {t} ORDER BY 1, 2")
            for t in tables
        }
        with CampaignDB(v1_copy) as db:
            db.conn
        after = {
            t: _raw_rows(v1_copy, f"SELECT * FROM {t} ORDER BY 1, 2")
            for t in tables
        }
        assert after == before

    def test_upgrade_adds_empty_metrics_table(self, v1_copy):
        with pytest.raises(sqlite3.OperationalError):
            _raw_rows(v1_copy, "SELECT COUNT(*) FROM metrics")
        with CampaignDB(v1_copy) as db:
            db.conn
        assert _raw_rows(v1_copy, "SELECT COUNT(*) FROM metrics") == [(0,)]

    def test_upgrade_is_byte_deterministic(self, tmp_path):
        dumps = []
        for name in ("a.sqlite", "b.sqlite"):
            copy = tmp_path / name
            shutil.copyfile(FIXTURE, copy)
            with CampaignDB(copy) as db:
                db.conn
                dumps.append("\n".join(db.conn.iterdump()))
        assert dumps[0] == dumps[1]

    def test_migrated_store_serves_reads(self, v1_copy):
        with CampaignDB(v1_copy) as db:
            db.conn
        with CampaignDB(v1_copy) as db:
            _, rows = db.query("SELECT key FROM runs ORDER BY key")
        assert len(rows) >= 1


class TestReadOnlyRefusal:
    def test_read_open_refuses_old_store(self, v1_copy):
        db = CampaignDB(v1_copy)
        with pytest.raises(SchemaError, match="open for writing to migrate"):
            db.read
        db.close()

    def test_read_open_leaves_file_untouched(self, v1_copy):
        before = v1_copy.read_bytes()
        db = CampaignDB(v1_copy)
        with pytest.raises(SchemaError):
            db.read
        db.close()
        assert v1_copy.read_bytes() == before
        assert _raw_version(v1_copy) == 1


class TestChainGate:
    def test_gap_in_chain_is_loud(self, v1_copy, monkeypatch):
        # Pretend a v3 exists with no 2 -> 3 step registered: the chain
        # must stop loudly at the gap instead of misreading the store.
        import repro.db.schema as schema

        monkeypatch.setattr(schema, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
        conn = sqlite3.connect(v1_copy)
        try:
            with pytest.raises(SchemaError, match="no migration path"):
                check_schema(conn)
        finally:
            conn.close()

    def test_newer_store_is_rejected(self, v1_copy):
        conn = sqlite3.connect(v1_copy)
        try:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
            conn.commit()
            with pytest.raises(SchemaError, match="newer than this code"):
                check_schema(conn)
        finally:
            conn.close()

    def test_foreign_schema_is_rejected(self, tmp_path):
        path = tmp_path / "foreign.sqlite"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
        conn.executemany(
            "INSERT INTO meta VALUES (?, ?)",
            [("schema", "someone.else"), ("schema_version", "1")],
        )
        conn.commit()
        with pytest.raises(SchemaError, match="not a repro.db store"):
            check_schema(conn)
        conn.close()

    def test_stored_version_reads_stamp(self, v1_copy):
        conn = sqlite3.connect(f"file:{v1_copy}?mode=ro", uri=True)
        try:
            assert stored_version(conn) == ("repro.db", 1)
        finally:
            conn.close()
