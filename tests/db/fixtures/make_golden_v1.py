"""Regenerate the committed golden v1 store fixture.

Run **only from a checkout at schema version 1** (the commit that
introduced ``repro.db``): it executes a tiny two-spec campaign plus one
traced profile run into ``golden_v1.sqlite``.  The committed fixture is
what the MIGRATIONS-chain tests upgrade; regenerating it from a newer
schema would defeat the point, so the script refuses when
``SCHEMA_VERSION != 1``.

    PYTHONPATH=src python tests/db/fixtures/make_golden_v1.py
"""

from __future__ import annotations

import sqlite3
import sys
from pathlib import Path

from repro.campaign.engine import run_campaign
from repro.campaign.spec import ExperimentSpec
from repro.db import CampaignDB, store_profile
from repro.db.schema import SCHEMA_VERSION
from repro.obs import profile_spec
from repro.runtime import presets

OUT = Path(__file__).parent / "golden_v1.sqlite"


def main() -> int:
    if SCHEMA_VERSION != 1:
        print(
            f"refusing: SCHEMA_VERSION is {SCHEMA_VERSION}, need a v1 "
            "checkout to regenerate the v1 fixture",
            file=sys.stderr,
        )
        return 1
    OUT.unlink(missing_ok=True)
    base = ExperimentSpec(
        app="lulesh",
        config=presets.mpc_omp(n_threads=4),
        params={"s": 8, "iterations": 2, "tpl": 8},
    )
    specs = [base, base.with_params(tpl=16)]
    out = run_campaign(specs, store=OUT, campaign="golden-v1")
    assert out.ok, out.summary()
    with CampaignDB(OUT) as db:
        store_profile(db, profile_spec(base), campaign="golden-v1")
        # Single-file fixture: fold the WAL into the main database.
        db.conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
    for side in (OUT.with_suffix(".sqlite-wal"), OUT.with_suffix(".sqlite-shm")):
        side.unlink(missing_ok=True)
    with sqlite3.connect(OUT) as conn:
        rows = dict(
            conn.execute(
                "SELECT key, value FROM meta WHERE key IN "
                "('schema', 'schema_version')"
            ).fetchall()
        )
    print(f"wrote {OUT} ({OUT.stat().st_size} bytes): {rows}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
