"""Canned reports and the from_db analysis constructors vs in-memory."""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.metg import metg, metg_from_db
from repro.analysis.sweep import Sweep, run_spec_sweep
from repro.campaign.engine import run_campaign
from repro.campaign.spec import ExperimentSpec
from repro.db import (
    CampaignDB,
    discovery_regressions,
    list_runs,
    slack_by_loop,
    store_profile,
    top_critical_tasks,
)
from repro.memory.machine import tiny_test_machine
from repro.obs.critical_path import critical_path_from_db
from repro.obs.profile import profile_spec
from repro.runtime import presets

CFG = presets.mpc_omp(tiny_test_machine(4), n_threads=4)
SPEC = ExperimentSpec(app="lulesh", config=CFG,
                      params={"s": 8, "iterations": 2, "tpl": 8})

REL_TOL = 1e-12


@pytest.fixture(scope="module")
def profiled_store(tmp_path_factory):
    """One profiled run stored with critical-path annotations."""
    path = tmp_path_factory.mktemp("db") / "p.sqlite"
    report = profile_spec(SPEC)
    assert report.cp is not None
    with CampaignDB(path) as db:
        store_profile(db, report, campaign="prof")
    return path, report


class TestTopCriticalTasks:
    def test_matches_in_memory_critical_path(self, profiled_store):
        path, report = profiled_store
        with CampaignDB(path) as db:
            cols, rows = top_critical_tasks(db, limit=10_000)
        assert cols == ["name", "spans", "seconds"]
        by_name = dict(report.cp.by_name)
        assert [name for name, _, _ in rows] == [n for n, _ in report.cp.by_name]
        for name, _spans, seconds in rows:
            assert seconds == pytest.approx(by_name[name], rel=REL_TOL)

    def test_limit(self, profiled_store):
        path, _ = profiled_store
        with CampaignDB(path) as db:
            _, rows = top_critical_tasks(db, limit=3)
        assert len(rows) == 3


class TestSlackByLoop:
    def test_covers_every_measured_span(self, profiled_store):
        path, report = profiled_store
        with CampaignDB(path) as db:
            cols, rows = slack_by_loop(db)
            _, totals = db.query(
                "SELECT COUNT(*), SUM(on_path) FROM spans "
                "WHERE slack IS NOT NULL")
        assert "loop" in cols and "on_path_spans" in cols
        i_spans = cols.index("spans")
        i_on = cols.index("on_path_spans")
        assert sum(r[i_spans] for r in rows) == totals[0][0]
        assert sum(r[i_on] for r in rows) == totals[0][1]
        # every on-path span has zero-or-negative-epsilon slack by
        # construction; loops holding one must report min_slack ~ 0
        i_min = cols.index("min_slack")
        for r in rows:
            if r[i_on]:
                assert r[i_min] == pytest.approx(0.0, abs=1e-9)


class TestCriticalPathFromDb:
    def test_matches_report(self, profiled_store):
        path, report = profiled_store
        with CampaignDB(path) as db:
            summary = critical_path_from_db(db)
            _, keys = db.query(
                "SELECT key FROM trace_runs "
                "WHERE id IN (SELECT DISTINCT run FROM spans)")
        assert summary.run == keys[0][0]
        assert summary.length == pytest.approx(report.cp.length, rel=REL_TOL)
        assert [n for n, _ in summary.by_name] == \
            [n for n, _ in report.cp.by_name]
        assert summary.n_path_tasks == report.cp.n_path_tasks


class TestDiscoveryRegressions:
    def test_joins_matching_specs_across_campaigns(self, tmp_path):
        base = [SPEC.with_params(tpl=t) for t in (4, 8)]
        variant = [dataclasses.replace(s, config=presets.llvm_like(
            tiny_test_machine(4), n_threads=4)) for s in base]
        path = tmp_path / "s.sqlite"
        run_campaign(base, store=path, campaign="a")
        run_campaign(variant, store=path, campaign="b")
        with CampaignDB(path) as db:
            cols, rows = discovery_regressions(db, a="a", b="b")
            _, all_runs = list_runs(db)
        assert len(all_runs) == 4
        assert len(rows) == 2  # one joined row per matching (params, seed)
        i_da, i_db = cols.index("discovery_a"), cols.index("discovery_b")
        i_delta = cols.index("delta_discovery")
        for r in rows:
            assert r[i_delta] == pytest.approx(r[i_db] - r[i_da], rel=1e-9)
        # sorted by regression, worst first
        deltas = [r[i_delta] for r in rows]
        assert deltas == sorted(deltas, reverse=True)

    def test_disjoint_campaigns_join_nothing(self, tmp_path):
        path = tmp_path / "s.sqlite"
        run_campaign([SPEC], store=path, campaign="a")
        run_campaign([SPEC.with_params(tpl=16)], store=path, campaign="b")
        with CampaignDB(path) as db:
            _, rows = discovery_regressions(db, a="a", b="b")
        assert rows == []


class TestAnalysisFromDb:
    def test_sweep_and_metg_parity(self, tmp_path):
        path = tmp_path / "s.sqlite"
        tpls = (2, 4, 8, 16)
        sweep = run_spec_sweep(SPEC, tpls, cache=str(path))
        with CampaignDB(path) as db:
            from_db = Sweep.from_db(db)
            db_metg = metg_from_db(db)
        assert [p.tpl for p in from_db.points] == [p.tpl for p in sweep.points]
        for a, b in zip(from_db.points, sweep.points):
            assert a.total == b.total and a.discovery == b.discovery
        mem = metg({"mpc-omp": sweep})["mpc-omp"]
        got = db_metg["mpc-omp"]
        assert (got.metg, got.tpl, got.best_total) == \
            (mem.metg, mem.tpl, mem.best_total)
