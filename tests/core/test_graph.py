"""Unit tests for TaskGraph storage and edge accounting."""

import pytest

from repro.core.graph import EdgeStats, TaskGraph
from repro.core.task import TaskState


class TestEdgeCreation:
    def test_simple_edge(self):
        g = TaskGraph()
        a, b = g.new_task(name="a"), g.new_task(name="b")
        assert g.add_edge(a, b, dedup=False)
        assert b.npred == 1
        assert a.successors == [b]
        assert g.n_edges == 1

    def test_self_edge_rejected(self):
        g = TaskGraph()
        a = g.new_task()
        assert not g.add_edge(a, a, dedup=False)
        assert g.n_edges == 0

    def test_duplicate_skipped_with_dedup(self):
        g = TaskGraph()
        a, b = g.new_task(), g.new_task()
        g.add_edge(a, b, dedup=True)
        assert not g.add_edge(a, b, dedup=True)
        assert b.npred == 1
        assert g.stats.duplicates_skipped == 1

    def test_duplicate_created_without_dedup(self):
        g = TaskGraph()
        a, b = g.new_task(), g.new_task()
        g.add_edge(a, b, dedup=False)
        assert g.add_edge(a, b, dedup=False)
        assert b.npred == 2
        assert g.stats.duplicates_created == 1
        assert g.n_edges == 2

    def test_nonadjacent_duplicate_not_detected(self):
        # O(1) detection only catches adjacent duplicates; interleaving a
        # different successor resets last_successor.
        g = TaskGraph()
        a, b, c = g.new_task(), g.new_task(), g.new_task()
        g.add_edge(a, b, dedup=True)
        g.add_edge(a, c, dedup=True)
        assert g.add_edge(a, b, dedup=True)
        assert b.npred == 2

    def test_prune_completed(self):
        g = TaskGraph()
        a, b = g.new_task(), g.new_task()
        a.state = TaskState.COMPLETED
        assert not g.add_edge(a, b, dedup=False)
        assert g.stats.pruned == 1
        assert b.npred == 0

    def test_persistent_presatisfied(self):
        g = TaskGraph(persistent=True)
        a, b = g.new_task(), g.new_task()
        a.state = TaskState.COMPLETED
        assert g.add_edge(a, b, dedup=False)
        assert b.npred == 0
        assert b.presat == 1
        assert a.successors == [b]


class TestGraphLifecycle:
    def test_tids_sequential(self):
        g = TaskGraph()
        tasks = [g.new_task() for _ in range(5)]
        assert [t.tid for t in tasks] == list(range(5))

    def test_stub_counted(self):
        g = TaskGraph()
        s = g.new_stub()
        assert s.is_stub
        assert g.stats.redirect_nodes == 1

    def test_persistent_flag_propagates(self):
        g = TaskGraph(persistent=True)
        t = g.new_task()
        assert t.persistent

    def test_reset_for_replay(self):
        g = TaskGraph(persistent=True)
        a, b = g.new_task(), g.new_task()
        g.add_edge(a, b, dedup=False)
        a.npred_initial, b.npred_initial = 0, 1
        a.state = b.state = TaskState.COMPLETED
        b.npred = 0
        g.reset_for_replay()
        assert a.state == TaskState.CREATED
        assert b.npred == 1

    def test_validate_acyclic_ok(self):
        g = TaskGraph()
        a, b, c = g.new_task(), g.new_task(), g.new_task()
        g.add_edge(a, b, dedup=False)
        g.add_edge(b, c, dedup=False)
        g.validate_acyclic()  # no raise

    def test_validate_acyclic_detects_cycle(self):
        g = TaskGraph()
        a, b = g.new_task(), g.new_task()
        # Force a cycle (the resolver can never produce one: it only adds
        # edges towards the task currently being submitted).
        g.add_edge(a, b, dedup=False)
        g.add_edge(b, a, dedup=False)
        with pytest.raises(ValueError, match="cycle"):
            g.validate_acyclic()

    def test_topological_order_is_creation_order(self):
        g = TaskGraph()
        ts = [g.new_task() for _ in range(4)]
        g.add_edge(ts[0], ts[2], dedup=False)
        g.add_edge(ts[1], ts[3], dedup=False)
        assert g.topological_order() == ts


class TestEdgeStats:
    def test_merge(self):
        a = EdgeStats(created=1, pruned=2, duplicates_skipped=3)
        b = EdgeStats(created=10, redirect_nodes=1, duplicates_created=4)
        a.merge(b)
        assert a.created == 11
        assert a.pruned == 2
        assert a.duplicates_skipped == 3
        assert a.duplicates_created == 4
        assert a.redirect_nodes == 1
