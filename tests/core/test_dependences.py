"""Semantic tests of the dependence resolver — the heart of TDG discovery."""


from repro.core.dependences import DependenceResolver
from repro.core.graph import TaskGraph
from repro.core.optimizations import OptimizationSet
from repro.core.task import DepMode, Task, TaskState


def make(opts="", persistent=False):
    graph = TaskGraph(persistent=persistent)
    return graph, DependenceResolver(graph, OptimizationSet.parse(opts))


def submit(graph, resolver, deps, name=""):
    t = graph.new_task(name=name)
    res = resolver.resolve(t, tuple(deps))
    return t, res


def edges(graph):
    return [(p.tid, s.tid) for p, s in graph.iter_edges()]


X, Y, Z = 0, 1, 2


class TestBasicChains:
    def test_raw_edge(self):
        g, r = make()
        w, _ = submit(g, r, [(X, DepMode.OUT)])
        rd, res = submit(g, r, [(X, DepMode.IN)])
        assert edges(g) == [(w.tid, rd.tid)]
        assert rd.npred == 1
        assert res.n_edges == 1

    def test_war_edge(self):
        g, r = make()
        rd, _ = submit(g, r, [(X, DepMode.IN)])
        w, _ = submit(g, r, [(X, DepMode.OUT)])
        assert edges(g) == [(rd.tid, w.tid)]

    def test_waw_edge(self):
        g, r = make()
        w1, _ = submit(g, r, [(X, DepMode.OUT)])
        w2, _ = submit(g, r, [(X, DepMode.OUT)])
        assert edges(g) == [(w1.tid, w2.tid)]

    def test_inout_behaves_as_out(self):
        g, r = make()
        w1, _ = submit(g, r, [(X, DepMode.INOUT)])
        w2, _ = submit(g, r, [(X, DepMode.INOUT)])
        assert edges(g) == [(w1.tid, w2.tid)]

    def test_concurrent_readers_no_edges(self):
        g, r = make()
        w, _ = submit(g, r, [(X, DepMode.OUT)])
        r1, _ = submit(g, r, [(X, DepMode.IN)])
        r2, _ = submit(g, r, [(X, DepMode.IN)])
        assert (r1.tid, r2.tid) not in edges(g)
        assert (r2.tid, r1.tid) not in edges(g)
        assert r1.npred == 1 and r2.npred == 1

    def test_writer_after_readers_waits_for_all(self):
        g, r = make()
        w, _ = submit(g, r, [(X, DepMode.OUT)])
        readers = [submit(g, r, [(X, DepMode.IN)])[0] for _ in range(4)]
        w2, _ = submit(g, r, [(X, DepMode.OUT)])
        for rd in readers:
            assert (rd.tid, w2.tid) in edges(g)
        # Writer edge is transitively covered by the readers.
        assert (w.tid, w2.tid) not in edges(g)

    def test_independent_addresses_no_edges(self):
        g, r = make()
        a, _ = submit(g, r, [(X, DepMode.OUT)])
        b, _ = submit(g, r, [(Y, DepMode.OUT)])
        assert edges(g) == []

    def test_first_reader_of_untouched_address(self):
        g, r = make()
        rd, res = submit(g, r, [(X, DepMode.IN)])
        assert res.n_edges == 0
        assert rd.npred == 0


class TestFig3MultipleEdges:
    """The Fig. 3 pattern: two addresses resolving to the same predecessor."""

    def test_duplicate_edges_without_b(self):
        g, r = make("")
        w, _ = submit(g, r, [(X, DepMode.OUT), (Y, DepMode.OUT)])
        rd, res = submit(g, r, [(X, DepMode.IN), (Y, DepMode.IN)])
        assert res.n_edges == 2  # duplicate materialized
        assert rd.npred == 2
        assert g.stats.duplicates_created == 1

    def test_duplicate_edges_removed_with_b(self):
        g, r = make("b")
        w, _ = submit(g, r, [(X, DepMode.OUT), (Y, DepMode.OUT)])
        rd, res = submit(g, r, [(X, DepMode.IN), (Y, DepMode.IN)])
        assert res.n_edges == 1
        assert res.n_skipped == 1
        assert rd.npred == 1
        assert g.stats.duplicates_skipped == 1

    def test_duplicate_detection_is_adjacent_only(self):
        # A -> C via X, B -> C via Y, A -> C via Z: the second A edge is
        # NOT adjacent in A's creation order... but sequential submission
        # means it IS adjacent from A's point of view (last_successor).
        g, r = make("b")
        a, _ = submit(g, r, [(X, DepMode.OUT), (Z, DepMode.OUT)])
        b, _ = submit(g, r, [(Y, DepMode.OUT)])
        c, res = submit(
            g, r, [(X, DepMode.IN), (Y, DepMode.IN), (Z, DepMode.IN)]
        )
        # a->c, b->c, then a->c again: a.last_successor is c, so deduped.
        assert res.n_edges == 2
        assert c.npred == 2

    def test_npred_consistent_with_duplicates(self):
        """Without (b), duplicates must still be released consistently."""
        g, r = make("")
        w, _ = submit(g, r, [(X, DepMode.OUT), (Y, DepMode.OUT)])
        rd, _ = submit(g, r, [(X, DepMode.IN), (Y, DepMode.IN)])
        # Both edges exist; releasing each of w's successor entries once
        # brings npred to exactly 0.
        for s in w.successors:
            s.npred -= 1
        assert rd.npred == 0


class TestInoutset:
    """Fig. 4: m concurrent writers, n readers."""

    def _build(self, opts, m, n):
        g, r = make(opts)
        writers = [submit(g, r, [(X, DepMode.INOUTSET)])[0] for _ in range(m)]
        readers = [submit(g, r, [(X, DepMode.IN)])[0] for _ in range(n)]
        return g, writers, readers

    def test_group_members_are_concurrent(self):
        g, writers, _ = self._build("", 5, 0)
        for w in writers:
            assert w.npred == 0
            assert w.successors == []

    def test_mn_edges_without_c(self):
        m, n = 5, 7
        g, writers, readers = self._build("", m, n)
        assert g.stats.created == m * n
        for rd in readers:
            assert rd.npred == m

    def test_m_plus_n_edges_with_c(self):
        m, n = 5, 7
        g, writers, readers = self._build("c", m, n)
        # m edges into the redirect node + n edges out of it.
        assert g.stats.created == m + n
        assert g.stats.redirect_nodes == 1
        for rd in readers:
            assert rd.npred == 1

    def test_no_redirect_for_singleton_group(self):
        g, writers, readers = self._build("c", 1, 3)
        assert g.stats.redirect_nodes == 0
        assert g.stats.created == 3

    def test_writer_after_group_without_c(self):
        g, r = make("")
        writers = [submit(g, r, [(X, DepMode.INOUTSET)])[0] for _ in range(3)]
        w, _ = submit(g, r, [(X, DepMode.OUT)])
        assert w.npred == 3

    def test_writer_after_group_with_c(self):
        g, r = make("c")
        writers = [submit(g, r, [(X, DepMode.INOUTSET)])[0] for _ in range(3)]
        w, _ = submit(g, r, [(X, DepMode.OUT)])
        assert w.npred == 1  # via redirect
        assert g.stats.redirect_nodes == 1

    def test_group_waits_for_prior_writer(self):
        g, r = make("")
        w, _ = submit(g, r, [(X, DepMode.OUT)])
        x1, _ = submit(g, r, [(X, DepMode.INOUTSET)])
        x2, _ = submit(g, r, [(X, DepMode.INOUTSET)])
        assert x1.npred == 1 and x2.npred == 1
        assert (w.tid, x1.tid) in edges(g)
        assert (w.tid, x2.tid) in edges(g)

    def test_group_waits_for_prior_readers(self):
        g, r = make("")
        w, _ = submit(g, r, [(X, DepMode.OUT)])
        r1, _ = submit(g, r, [(X, DepMode.IN)])
        x1, _ = submit(g, r, [(X, DepMode.INOUTSET)])
        assert (r1.tid, x1.tid) in edges(g)

    def test_two_groups_separated_by_reader(self):
        g, r = make("")
        a = [submit(g, r, [(X, DepMode.INOUTSET)])[0] for _ in range(2)]
        rd, _ = submit(g, r, [(X, DepMode.IN)])
        b = [submit(g, r, [(X, DepMode.INOUTSET)])[0] for _ in range(2)]
        # Second group must wait for the reader (not join the first group).
        for w in b:
            assert (rd.tid, w.tid) in edges(g)

    def test_reset_clears_group_state(self):
        g, r = make("")
        submit(g, r, [(X, DepMode.INOUTSET)])
        r.reset()
        rd, res = submit(g, r, [(X, DepMode.IN)])
        assert res.n_edges == 0


class TestPruning:
    def test_completed_predecessor_pruned(self):
        g, r = make()
        w, _ = submit(g, r, [(X, DepMode.OUT)])
        w.state = TaskState.COMPLETED
        rd, res = submit(g, r, [(X, DepMode.IN)])
        assert res.n_edges == 0
        assert res.n_skipped == 1
        assert g.stats.pruned == 1
        assert rd.npred == 0

    def test_persistent_graph_does_not_prune(self):
        g, r = make(persistent=True)
        w, _ = submit(g, r, [(X, DepMode.OUT)])
        w.state = TaskState.COMPLETED
        rd, res = submit(g, r, [(X, DepMode.IN)])
        assert res.n_edges == 1
        assert g.stats.pruned == 0
        # Edge exists but is pre-satisfied for the current iteration.
        assert rd.npred == 0
        assert rd.presat == 1
        assert w.successors == [rd]


class TestResolutionResult:
    def test_addr_count(self):
        g, r = make()
        _, res = submit(g, r, [(X, DepMode.IN), (Y, DepMode.OUT), (Z, DepMode.IN)])
        assert res.n_addrs == 3

    def test_redirect_task_returned(self):
        g, r = make("c")
        for _ in range(2):
            submit(g, r, [(X, DepMode.INOUTSET)])
        _, res = submit(g, r, [(X, DepMode.IN)])
        assert res.n_redirects == 1
        assert len(res.redirect_tasks) == 1
        assert res.redirect_tasks[0].is_stub
