"""Unit tests for PersistentRegion (the PTSG data structure)."""

import pytest

from repro.core.graph import TaskGraph
from repro.core.persistent import PersistentRegion, PersistentStructureError
from repro.core.program import IterationSpec, TaskSpec
from repro.core.task import DepMode, TaskState


def make_region(n=3):
    g = TaskGraph(persistent=True)
    specs = [TaskSpec(name=f"t{i}", depends=((0, DepMode.INOUT),)) for i in range(n)]
    tasks = [g.new_task(name=s.name) for s in specs]
    for a, b in zip(tasks, tasks[1:]):
        g.add_edge(a, b, dedup=False)
    for t in tasks:
        t.npred_initial = t.npred
    return PersistentRegion(graph=g, template=specs, user_tasks=tasks), g, specs, tasks


class TestValidation:
    def test_identical_iteration_ok(self):
        region, g, specs, _ = make_region()
        region.validate_iteration(IterationSpec(index=1, tasks=list(specs)))

    def test_task_count_mismatch(self):
        region, g, specs, _ = make_region()
        with pytest.raises(PersistentStructureError, match="submits"):
            region.validate_iteration(IterationSpec(index=1, tasks=specs[:-1]))

    def test_dependence_mismatch(self):
        region, g, specs, _ = make_region()
        bad = list(specs)
        bad[1] = TaskSpec(name="t1", depends=((99, DepMode.IN),))
        with pytest.raises(PersistentStructureError, match="diverged"):
            region.validate_iteration(IterationSpec(index=1, tasks=bad))

    def test_name_mismatch(self):
        region, g, specs, _ = make_region()
        bad = list(specs)
        bad[0] = TaskSpec(name="other", depends=specs[0].depends)
        with pytest.raises(PersistentStructureError):
            region.validate_iteration(IterationSpec(index=1, tasks=bad))

    def test_body_change_allowed(self):
        # firstprivate payloads (bodies) may change between iterations.
        region, g, specs, _ = make_region()
        changed = [
            TaskSpec(name=s.name, depends=s.depends, body=(lambda: None))
            for s in specs
        ]
        region.validate_iteration(IterationSpec(index=1, tasks=changed))

    def test_template_task_length_mismatch_rejected(self):
        g = TaskGraph(persistent=True)
        with pytest.raises(ValueError, match="mismatch"):
            PersistentRegion(graph=g, template=[TaskSpec(name="t")], user_tasks=[])


class TestRearm:
    def test_rearm_resets_all_tasks(self):
        region, g, specs, tasks = make_region()
        for t in tasks:
            t.state = TaskState.COMPLETED
            t.npred = 0
        region.rearm()
        for t in tasks:
            assert t.state == TaskState.CREATED
            assert t.npred == t.npred_initial

    def test_counters(self):
        region, g, specs, tasks = make_region(4)
        assert region.n_tasks == 4
        assert region.n_edges == 3
