"""Unit tests for OptimizationSet."""

import pytest

from repro.core.optimizations import OptimizationSet


class TestFactories:
    def test_none(self):
        o = OptimizationSet.none()
        assert not (o.a or o.b or o.c or o.p)

    def test_all(self):
        o = OptimizationSet.all()
        assert o.a and o.b and o.c and o.p

    def test_abc(self):
        o = OptimizationSet.abc()
        assert o.a and o.b and o.c and not o.p


class TestParse:
    @pytest.mark.parametrize("spec,expected", [
        ("", (False, False, False, False)),
        ("none", (False, False, False, False)),
        ("a", (True, False, False, False)),
        ("bc", (False, True, True, False)),
        ("abcp", (True, True, True, True)),
        ("all", (True, True, True, True)),
        ("ABC", (True, True, True, False)),
        ("p", (False, False, False, True)),
    ])
    def test_parse(self, spec, expected):
        o = OptimizationSet.parse(spec)
        assert (o.a, o.b, o.c, o.p) == expected

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown optimization"):
            OptimizationSet.parse("xyz")


class TestLabel:
    def test_label_none(self):
        assert OptimizationSet.none().label == "none"

    def test_label_combo(self):
        assert OptimizationSet.parse("bp").label == "(b)+(p)"

    def test_str(self):
        assert str(OptimizationSet.parse("abc")) == "(a)+(b)+(c)"

    def test_frozen(self):
        o = OptimizationSet.none()
        with pytest.raises(AttributeError):
            o.a = True

    def test_hashable(self):
        assert OptimizationSet.parse("ab") == OptimizationSet(a=True, b=True)
        assert len({OptimizationSet.parse("a"), OptimizationSet.parse("a")}) == 1
