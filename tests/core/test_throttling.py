"""Unit tests for task throttling config."""

import pytest

from repro.core.throttling import ThrottleConfig


class TestFactories:
    def test_disabled_never_blocks(self):
        t = ThrottleConfig.disabled()
        assert not t.should_block(10**9, 10**9)

    def test_mpc_default_total_cap(self):
        t = ThrottleConfig.mpc_default()
        assert t.total_cap == 10_000_000
        assert t.ready_cap is None

    def test_ready_bound(self):
        t = ThrottleConfig.ready_bound(64)
        assert t.ready_cap == 64
        assert t.total_cap is None


class TestShouldBlock:
    def test_ready_cap_blocks(self):
        t = ThrottleConfig(ready_cap=4, total_cap=None)
        assert not t.should_block(3, 100)
        assert t.should_block(4, 100)

    def test_total_cap_blocks(self):
        t = ThrottleConfig(ready_cap=None, total_cap=10)
        assert not t.should_block(0, 9)
        assert t.should_block(0, 10)

    def test_both_caps(self):
        t = ThrottleConfig(ready_cap=5, total_cap=10)
        assert t.should_block(5, 0)
        assert t.should_block(0, 10)
        assert not t.should_block(4, 9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThrottleConfig(ready_cap=0)
        with pytest.raises(ValueError):
            ThrottleConfig(total_cap=-1)
