"""Unit tests for the task model."""

import math


from repro.core.graph import TaskGraph
from repro.core.task import DepMode, Task, TaskState


class TestTaskBasics:
    def test_initial_state(self):
        t = Task(0, "t")
        assert t.state == TaskState.CREATED
        assert t.npred == 0
        assert t.successors == []
        assert not t.armed
        assert not t.completed

    def test_identity_fields(self):
        t = Task(7, "kernel", loop_id=3, iteration=2, flops=10.0, fp_bytes=64)
        assert t.tid == 7
        assert t.name == "kernel"
        assert t.loop_id == 3
        assert t.iteration == 2
        assert t.flops == 10.0
        assert t.fp_bytes == 64

    def test_footprint_is_tuple(self):
        t = Task(0, footprint=[(1, 100), (2, 200)])
        assert t.footprint == ((1, 100), (2, 200))

    def test_timestamps_start_nan(self):
        t = Task(0)
        assert math.isnan(t.created_at)
        assert math.isnan(t.started_at)
        assert math.isnan(t.completed_at)

    def test_completed_property(self):
        t = Task(0)
        t.state = TaskState.COMPLETED
        assert t.completed

    def test_repr_contains_key_fields(self):
        t = Task(3, "foo")
        assert "foo" in repr(t)
        assert "3" in repr(t)


class TestReplayReset:
    def test_reset_restores_npred(self):
        t = Task(0)
        t.npred_initial = 5
        t.npred = 0
        t.state = TaskState.COMPLETED
        t.armed = True
        t.worker = 3
        t.reset_for_replay()
        assert t.npred == 5
        assert t.state == TaskState.CREATED
        assert not t.armed
        assert t.worker == -1
        assert math.isnan(t.started_at)
        assert math.isnan(t.completed_at)

    def test_reset_keeps_successors(self):
        g = TaskGraph()
        a, b = g.new_task(), g.new_task()
        g.add_edge(a, b, dedup=False)
        a.reset_for_replay()
        assert a.successors == [b]

    def test_reset_clears_detach(self):
        t = Task(0)
        t.detach_pending = True
        t.reset_for_replay()
        assert not t.detach_pending


class TestDepMode:
    def test_modes_distinct(self):
        assert len({DepMode.IN, DepMode.OUT, DepMode.INOUT, DepMode.INOUTSET}) == 4

    def test_mode_values_stable(self):
        # Stable integer values: tests and traces may persist them.
        assert DepMode.IN == 0
        assert DepMode.OUT == 1
        assert DepMode.INOUT == 2
        assert DepMode.INOUTSET == 3
