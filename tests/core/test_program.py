"""Unit tests for the program builder API."""

import pytest

from repro.core.program import CommKind, CommSpec, Program, ProgramBuilder, TaskSpec
from repro.core.task import DepMode


class TestTaskSpec:
    def test_defaults(self):
        s = TaskSpec(name="t")
        assert s.depends == ()
        assert s.flops == 0.0
        assert s.comm is None

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(name="t", flops=-1.0)

    def test_negative_fp_bytes_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(name="t", fp_bytes=-1)


class TestCommSpec:
    def test_allreduce_needs_no_peer(self):
        CommSpec(kind=CommKind.IALLREDUCE, nbytes=8)

    def test_p2p_needs_peer(self):
        with pytest.raises(ValueError, match="peer"):
            CommSpec(kind=CommKind.ISEND, nbytes=8)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            CommSpec(kind=CommKind.IALLREDUCE, nbytes=-1)


class TestProgramBuilder:
    def test_simple_build(self):
        b = ProgramBuilder("p")
        with b.iteration():
            b.task("t0", out=["x"])
            b.task("t1", inp=["x"])
        prog = b.build()
        assert prog.n_iterations == 1
        assert prog.n_tasks == 2

    def test_dep_modes_lowered_in_order(self):
        b = ProgramBuilder("p")
        with b.iteration():
            spec = b.task("t", inp=["a"], out=["b"], inout=["c"], inoutset=["d"])
        modes = [m for _, m in spec.depends]
        assert modes == [DepMode.IN, DepMode.OUT, DepMode.INOUT, DepMode.INOUTSET]

    def test_addresses_interned(self):
        b = ProgramBuilder("p")
        with b.iteration():
            s0 = b.task("t0", out=["x"])
            s1 = b.task("t1", inp=["x"])
        assert s0.depends[0][0] == s1.depends[0][0]

    def test_task_outside_iteration_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(RuntimeError, match="iteration"):
            b.task("t")

    def test_nested_iterations_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(RuntimeError, match="nested"):
            with b.iteration():
                with b.iteration():
                    pass

    def test_build_inside_iteration_rejected(self):
        b = ProgramBuilder("p")
        ctx = b.iteration()
        ctx.__enter__()
        with pytest.raises(RuntimeError):
            b.build()

    def test_failed_iteration_discarded(self):
        b = ProgramBuilder("p")
        with pytest.raises(KeyError):
            with b.iteration():
                b.task("t")
                raise KeyError("boom")
        assert b.build().n_iterations == 0

    def test_loop_labels(self):
        b = ProgramBuilder("p")
        with b.iteration():
            b.task("t0", loop="alpha")
            b.task("t1", loop="beta")
            b.task("t2", loop="alpha")
        assert b.loop_labels == {"alpha": 0, "beta": 1}

    def test_taskloop(self):
        b = ProgramBuilder("p")
        with b.iteration():
            specs = b.taskloop(
                "work",
                4,
                dep_fn=lambda i: {"inp": [("x", i)], "out": [("y", i)]},
                flops_per_task=10.0,
            )
        assert len(specs) == 4
        assert all(s.flops == 10.0 for s in specs)
        assert specs[0].loop_id == specs[3].loop_id

    def test_taskloop_bad_clause_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(ValueError, match="unknown clauses"):
            with b.iteration():
                b.taskloop("w", 2, dep_fn=lambda i: {"bogus": [1]})

    def test_taskloop_zero_tasks_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(ValueError):
            with b.iteration():
                b.taskloop("w", 0, dep_fn=lambda i: {})


class TestProgram:
    def test_from_template_shares_specs(self):
        specs = [TaskSpec(name="t")]
        prog = Program.from_template(specs, 4)
        assert prog.n_iterations == 4
        assert prog.n_tasks == 4
        assert prog.iterations[0].tasks is prog.iterations[3].tasks

    def test_from_template_bad_iterations(self):
        with pytest.raises(ValueError):
            Program.from_template([TaskSpec(name="t")], 0)

    def test_specs_order(self):
        b = ProgramBuilder("p")
        for _ in range(2):
            with b.iteration():
                b.task("a")
                b.task("b")
        prog = b.build()
        order = [(it, s.name) for it, s in prog.specs()]
        assert order == [(0, "a"), (0, "b"), (1, "a"), (1, "b")]

    def test_type_checked_iterations(self):
        with pytest.raises(TypeError):
            Program([("not", "an", "iteration")])


class TestDuplicateDependGuard:
    def test_duplicate_same_clause_rejected(self):
        b = ProgramBuilder("p")
        with b.iteration():
            with pytest.raises(ValueError, match="duplicate depend item"):
                b.task("t", inp=["x", "x"])

    def test_failing_task_not_submitted(self):
        b = ProgramBuilder("p")
        with b.iteration():
            b.task("ok", out=["x"])
            with pytest.raises(ValueError, match="duplicate depend item"):
                b.task("t", inout=["y", "y"])
        prog = b.build()
        assert prog.n_tasks == 1

    def test_same_addr_different_modes_allowed(self):
        b = ProgramBuilder("p")
        with b.iteration():
            spec = b.task("t", inp=["x"], out=["x"])
        assert len(spec.depends) == 2

    def test_taskloop_duplicates_rejected(self):
        b = ProgramBuilder("p")
        with b.iteration():
            with pytest.raises(ValueError, match="duplicate depend item"):
                b.taskloop("l", 2, dep_fn=lambda i: {"inp": ["x", "x"]})


class TestTaskwait:
    def test_taskwait_marker(self):
        b = ProgramBuilder("p")
        with b.iteration():
            b.task("a")
            spec = b.taskwait()
            b.task("b")
        assert spec.barrier
        prog = b.build()
        assert [s.name for s in prog.iterations[0].tasks] == ["a", "taskwait", "b"]

    def test_taskwait_outside_iteration_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(RuntimeError, match="iteration"):
            b.taskwait()


class TestInoutsetEdgeAccounting:
    """Program-level m*n vs m+n accounting for optimization (c) (Fig. 4)."""

    def build(self, m=4, n=6):
        b = ProgramBuilder("fanin")
        with b.iteration():
            for i in range(m):
                b.task(f"w{i}", inoutset=["force"])
            for i in range(n):
                b.task(f"r{i}", inp=["force"])
        return b.build()

    def discover(self, opts, m, n):
        from repro.core.optimizations import OptimizationSet
        from repro.verify.static_graph import discover_static

        return discover_static(self.build(m, n), OptimizationSet.parse(opts))

    def test_m_times_n_without_c(self):
        tdg = self.discover("ab", m=4, n=6)
        assert tdg.graph.stats.created == 4 * 6
        assert tdg.graph.stats.redirect_nodes == 0

    def test_m_plus_n_with_c(self):
        tdg = self.discover("abc", m=4, n=6)
        assert tdg.graph.stats.created == 4 + 6
        assert tdg.graph.stats.redirect_nodes == 1
        assert tdg.n_stubs == 1
