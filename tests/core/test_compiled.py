"""Tests for the compiled TDG artifact, its signature, and its cache."""

import pytest

from repro.core import (
    CompiledGraphCache,
    CompiledTDG,
    IterationSpec,
    OptimizationSet,
    Program,
    ProgramBuilder,
    compile_program,
    structural_signature,
)
from repro.core.compiled import COMPILED_FORMAT
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime
from repro.runtime.costs import DiscoveryCosts


def chain_program(n=4, iterations=3, *, persistent=True, name="chain"):
    b = ProgramBuilder(name, persistent_candidate=persistent)
    for _ in range(iterations):
        with b.iteration():
            for i in range(n):
                b.task(
                    f"t{i}", inp=["x"] if i else [], inout=["x"],
                    flops=10.0, fp_bytes=16,
                )
    return b.build()


def redirect_program(iterations=2):
    """inoutset group with two readers: opt (c) inserts a redirect stub."""
    b = ProgramBuilder("redir", persistent_candidate=True)
    for _ in range(iterations):
        with b.iteration():
            for i in range(3):
                b.task(f"acc{i}", inoutset=["s"], flops=1.0)
            b.task("r0", inp=["s"], flops=1.0)
            b.task("r1", inp=["s"], flops=1.0)
    return b.build()


ABCP = OptimizationSet.parse("abcp")


class TestStructuralSignature:
    def test_stable_across_builds(self):
        a = structural_signature(chain_program(), ABCP)
        b = structural_signature(chain_program(), ABCP)
        assert a == b

    def test_opts_change_the_key(self):
        prog = chain_program()
        assert structural_signature(prog, ABCP) != structural_signature(
            prog, OptimizationSet.parse("ab")
        )

    def test_structure_change_changes_the_key(self):
        assert structural_signature(chain_program(4), ABCP) != (
            structural_signature(chain_program(5), ABCP)
        )

    def test_shared_and_unshared_iteration_lists_hash_equal(self):
        """from_template shares spec lists; a content-equal program with
        per-iteration copies must produce the same key."""
        shared = chain_program(3, iterations=3)
        tpl = list(shared.iterations[0].tasks)
        unshared = Program(
            [
                IterationSpec(index=it.index, tasks=list(tpl))
                for it in shared.iterations
            ],
            persistent_candidate=True,
            name="chain",
        )
        assert structural_signature(shared, ABCP) == structural_signature(
            unshared, ABCP
        )


class TestCompileProgram:
    def test_chain_csr(self):
        c = compile_program(chain_program(3, iterations=1), OptimizationSet.parse("ab"))
        assert isinstance(c, CompiledTDG)
        assert c.n_tasks == 3
        assert c.n_edges == 2
        assert c.successors(0) == [1]
        assert c.successors(1) == [2]
        assert c.successors(2) == []
        assert c.indegree == [0, 1, 1]
        assert c.unique_edges() == {(0, 1), (1, 2)}

    def test_persistent_compiles_template_only(self):
        c = compile_program(chain_program(3, iterations=4), ABCP)
        assert c.persistent
        assert c.n_tasks == 3
        assert c.iteration == [0, 0, 0]

    def test_non_persistent_compiles_every_iteration(self):
        c = compile_program(
            chain_program(3, iterations=2, persistent=False),
            OptimizationSet.parse("ab"),
        )
        assert c.n_tasks == 6
        assert c.iteration == [0, 0, 0, 1, 1, 1]

    def test_stub_columns(self):
        c = compile_program(redirect_program(), ABCP)
        assert c.n_stubs == 1
        (stub,) = c.stub_tids
        assert c.spec_pos[stub] == -1
        assert c.stats.redirect_nodes == 1

    def test_iteration_costs_filled_with_cost_model(self):
        costs = DiscoveryCosts()
        c = compile_program(chain_program(3, iterations=3), ABCP, costs=costs)
        assert len(c.iteration_costs) == 3
        # Replay iterations only pay firstprivate copies.
        assert c.iteration_costs[1] == c.iteration_costs[2]
        assert 0 < c.iteration_costs[1] < c.iteration_costs[0]

    def test_replay_costs_column(self):
        costs = DiscoveryCosts()
        c = compile_program(redirect_program(), ABCP)
        rc = c.replay_costs(costs)
        assert len(rc) == c.n_tasks
        (stub,) = c.stub_tids
        assert rc[stub] == 0.0
        user = c.user_tids[0]
        assert rc[user] == pytest.approx(
            costs.c_replay + costs.c_fp_byte * c.fp_bytes[user]
        )

    def test_keep_graph_returns_live_views(self):
        c, graph = compile_program(
            chain_program(3, iterations=1), ABCP, keep_graph=True
        )
        assert graph.n_tasks == c.n_tasks
        assert [t.name for t in graph.tasks] == c.name

    def test_round_trip_dict(self):
        c = compile_program(redirect_program(), ABCP, costs=DiscoveryCosts())
        back = CompiledTDG.from_dict(c.to_dict())
        assert back.to_dict() == c.to_dict()


class TestRuntimeSnapshotEquality:
    """The runtime's frozen artifact equals the static compile, field by
    field — the equality-by-construction contract."""

    def _run(self, prog, opts):
        rt = TaskRuntime(
            prog,
            RuntimeConfig(
                machine=tiny_test_machine(4), opts=OptimizationSet.parse(opts)
            ),
        )
        rt.run()
        return rt

    @pytest.mark.parametrize("make_prog", [chain_program, redirect_program])
    def test_persistent_snapshot_equals_static_compile(self, make_prog):
        rt = self._run(make_prog(), "abcp")
        static = compile_program(make_prog(), ABCP)
        assert rt.compiled().to_dict() == static.to_dict()

    def test_non_persistent_snapshot_equals_static_compile(self):
        # Non-overlapped mode: no task completes during discovery, so no
        # pruning — the exact precondition for static equality.
        prog = chain_program(4, iterations=2, persistent=False)
        rt = TaskRuntime(
            prog,
            RuntimeConfig(
                machine=tiny_test_machine(4),
                opts=OptimizationSet.parse("ab"),
                non_overlapped=True,
            ),
        )
        rt.run()
        static = compile_program(
            chain_program(4, iterations=2, persistent=False),
            OptimizationSet.parse("ab"),
        )
        assert rt.compiled().to_dict() == static.to_dict()

    def test_lulesh_snapshot_equality(self):
        from repro.apps.lulesh import LuleshConfig, build_task_program

        cfg = LuleshConfig(s=8, iterations=3, tpl=16)
        rt = self._run(build_task_program(cfg), "abcp")
        static = compile_program(build_task_program(cfg), ABCP)
        assert rt.compiled().to_dict() == static.to_dict()


class TestCompiledGraphCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = CompiledGraphCache(tmp_path)
        c = compile_program(chain_program(), ABCP)
        path = cache.put(c)
        assert path.is_file()
        assert cache.contains(c.key)
        got = cache.get(c.key)
        assert got is not None
        assert got.to_dict() == c.to_dict()

    def test_miss_returns_none(self, tmp_path):
        cache = CompiledGraphCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert not cache.contains("0" * 64)

    def test_invalidate(self, tmp_path):
        cache = CompiledGraphCache(tmp_path)
        c = compile_program(chain_program(), ABCP)
        cache.put(c)
        assert cache.invalidate(c.key)
        assert not cache.contains(c.key)
        assert not cache.invalidate(c.key)

    def test_len_and_keys(self, tmp_path):
        cache = CompiledGraphCache(tmp_path)
        a = compile_program(chain_program(3), ABCP)
        b = compile_program(chain_program(5), ABCP)
        cache.put(a)
        cache.put(b)
        assert len(cache) == 2
        assert cache.keys() == sorted([a.key, b.key])

    def test_for_campaign_nests_under_cache_root(self, tmp_path):
        cache = CompiledGraphCache.for_campaign(tmp_path)
        assert cache.root == tmp_path / CompiledGraphCache.SUBDIR

    def test_stale_format_misses(self, tmp_path):
        cache = CompiledGraphCache(tmp_path)
        c = compile_program(chain_program(), ABCP)
        path = cache.put(c)
        doc = path.read_text().replace(f'"format":{COMPILED_FORMAT}', '"format":0', 1)
        path.write_text(doc)
        assert cache.get(c.key) is None


class TestRuntimeCachePublication:
    def _config(self, opts="abcp"):
        return RuntimeConfig(
            machine=tiny_test_machine(4), opts=OptimizationSet.parse(opts)
        )

    def test_first_run_stores_second_hits(self, tmp_path):
        cache = CompiledGraphCache(tmp_path)
        rt1 = TaskRuntime(chain_program(), self._config(), compiled_cache=cache)
        res1 = rt1.run()
        assert res1.extra["compiled_tdg"]["cache"] == "stored"
        assert len(cache) == 1

        rt2 = TaskRuntime(chain_program(), self._config(), compiled_cache=cache)
        res2 = rt2.run()
        assert res2.extra["compiled_tdg"]["cache"] == "hit"
        assert res2.extra["compiled_tdg"]["key"] == res1.extra["compiled_tdg"]["key"]
        assert len(cache) == 1

    def test_cached_artifact_equals_static_compile(self, tmp_path):
        cache = CompiledGraphCache(tmp_path)
        rt = TaskRuntime(chain_program(), self._config(), compiled_cache=cache)
        rt.run()
        key = structural_signature(chain_program(), ABCP)
        assert cache.get(key).to_dict() == compile_program(
            chain_program(), ABCP
        ).to_dict()

    def test_no_cache_no_extra_key(self):
        rt = TaskRuntime(chain_program(), self._config())
        res = rt.run()
        assert "compiled_tdg" not in res.extra

    def test_non_persistent_run_does_not_publish(self, tmp_path):
        cache = CompiledGraphCache(tmp_path)
        rt = TaskRuntime(
            chain_program(persistent=False), self._config("abc"),
            compiled_cache=cache,
        )
        res = rt.run()
        assert len(cache) == 0
        assert "compiled_tdg" not in res.extra
