"""ResultCache: content-addressed entries, atomicity, error records."""

from __future__ import annotations

import json

from repro.campaign.cache import CACHE_FORMAT, ResultCache
from repro.campaign.runner import run_experiment
from repro.campaign.spec import ExperimentSpec
from repro.memory.machine import tiny_test_machine
from repro.runtime import presets
from repro.util.serde import canonical_json

CFG = presets.mpc_omp(tiny_test_machine(4), n_threads=4)


def spec(**kw) -> ExperimentSpec:
    kw.setdefault("app", "lulesh")
    kw.setdefault("config", CFG)
    kw.setdefault("params", {"s": 6, "iterations": 1, "tpl": 2})
    return ExperimentSpec(**kw)


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()
        assert cache.get(s) is None
        assert not cache.contains(s)
        res = run_experiment(s)
        cache.put(s, res)
        assert cache.contains(s)
        got = cache.get(s)
        assert got is not None
        # the stored result round-trips bitwise
        assert canonical_json(got.to_dict()) == canonical_json(res.to_dict())

    def test_entries_are_sharded_by_key_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()
        path = cache.path_for(s.key)
        assert path.parent.name == s.key[:2]
        assert path.name == f"{s.key}.json"

    def test_len_and_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        specs = [spec(seed=i) for i in range(3)]
        for s in specs:
            cache.put(s, run_experiment(s))
        assert len(cache) == 3
        assert cache.keys() == sorted(s.key for s in specs)

    def test_format_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()
        cache.put(s, run_experiment(s))
        doc = json.loads(cache.path_for(s.key).read_text())
        assert doc["format"] == CACHE_FORMAT
        doc["format"] = CACHE_FORMAT + 1
        cache.path_for(s.key).write_text(json.dumps(doc))
        assert cache.get(s) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()
        p = cache.path_for(s.key)
        p.parent.mkdir(parents=True)
        p.write_text("{not json")
        assert cache.get(s) is None

    def test_error_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()
        assert cache.get_error(s) is None
        cache.put_error(s, "Traceback: boom")
        assert "boom" in cache.get_error(s)
        # a later success supersedes the failure record
        cache.put(s, run_experiment(s))
        assert cache.get_error(s) is None
        assert cache.get(s) is not None

    def test_entry_is_canonical_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec()
        cache.put(s, run_experiment(s))
        text = cache.path_for(s.key).read_text()
        doc = json.loads(text)
        assert text.strip() == canonical_json(doc)
        assert doc["key"] == s.key
        assert doc["spec"] == s.to_dict()
