"""The fidelity field end to end: spec semantics, key stability, dispatch.

Three contracts guard the API redesign:

1. ``fidelity`` validates like ``engine`` and round-trips through
   JSON/dict/file serialization;
2. pre-tier specs are byte- and key-stable — old JSON without the field
   loads, hashes and caches exactly as before;
3. ``run_experiment`` dispatches cheap-tier specs through the compiled
   artifact (with the alias warm path) and DES specs through the event
   engines, all returning the unified RunResult shape.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.engine import run_campaign
from repro.campaign.runner import run_experiment
from repro.campaign.spec import ExperimentSpec, dump_specs, load_specs
from repro.core.compiled import CompiledGraphCache
from repro.memory.machine import tiny_test_machine
from repro.runtime import presets

CFG = presets.mpc_omp(tiny_test_machine(4), n_threads=4)
PARAMS = {"s": 8, "iterations": 2, "tpl": 4, "flops_per_item": 25.0}


def spec(**kw) -> ExperimentSpec:
    kw.setdefault("app", "lulesh")
    kw.setdefault("config", CFG)
    kw.setdefault("params", dict(PARAMS))
    return ExperimentSpec(**kw)


class TestSpecField:
    def test_default_is_des(self):
        assert spec().fidelity == "des"

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="unknown fidelity 'exact'"):
            spec(fidelity="exact")

    def test_cheap_tier_requires_task_engine(self):
        with pytest.raises(ValueError, match="requires engine 'task'"):
            spec(fidelity="replay", engine="forloop")

    def test_cheap_tier_single_rank_only(self):
        with pytest.raises(ValueError, match="single-rank only"):
            spec(fidelity="analytic", ranks=8)

    def test_with_fidelity_validates(self):
        s = spec().with_fidelity("replay")
        assert s.fidelity == "replay"
        with pytest.raises(ValueError, match="unknown fidelity"):
            spec().with_fidelity("fast")

    def test_label_names_non_default_tier(self):
        assert "replay" in spec(fidelity="replay").label
        assert "des" not in spec().label


class TestKeyStability:
    def test_des_fidelity_omitted_from_dict(self):
        assert "fidelity" not in spec().to_dict()
        assert spec(fidelity="replay").to_dict()["fidelity"] == "replay"

    def test_old_json_without_fidelity_loads_and_keys_identically(self):
        base = spec()
        d = base.to_dict()
        assert "fidelity" not in d
        old = ExperimentSpec.from_dict(json.loads(json.dumps(d)))
        assert old == base
        assert old.key == base.key
        assert old.fidelity == "des"

    def test_explicit_des_equals_default(self):
        assert spec(fidelity="des") == spec()
        assert spec(fidelity="des").key == spec().key

    def test_cheap_tier_gets_its_own_key(self):
        base = spec()
        rep = base.with_fidelity("replay")
        ana = base.with_fidelity("analytic")
        assert len({base.key, rep.key, ana.key}) == 3

    def test_round_trip_all_tiers(self):
        for f in ("analytic", "replay", "des"):
            s = spec(fidelity=f)
            assert ExperimentSpec.from_json(s.to_json()) == s

    def test_spec_file_round_trip(self):
        specs = [spec(), spec(fidelity="replay"), spec(fidelity="analytic")]
        assert load_specs(dump_specs(specs)) == specs


class TestRunnerDispatch:
    @pytest.mark.parametrize("fidelity", ["analytic", "replay", "des"])
    def test_unified_result_shape(self, fidelity):
        res = run_experiment(spec(fidelity=fidelity))
        assert res.extra["fidelity"] == fidelity
        assert "bounds" in res.extra
        assert res.extra["spec_key"] == spec(fidelity=fidelity).key
        assert res.makespan > 0
        assert res.n_tasks > 0

    def test_cheap_tiers_track_des(self):
        des = run_experiment(spec())
        rep = run_experiment(spec(fidelity="replay"))
        ana = run_experiment(spec(fidelity="analytic"))
        assert rep.n_tasks == des.n_tasks
        assert abs(rep.makespan - des.makespan) <= 0.10 * des.makespan
        b = ana.extra["bounds"]
        assert b["makespan_lower"] <= des.makespan * (1 + 1e-9)
        assert des.makespan <= b["makespan_upper"] * (1 + 1e-9)

    def test_artifact_alias_warm_path(self, tmp_path):
        cache = CompiledGraphCache(tmp_path)
        cold = run_experiment(spec(fidelity="replay"), compiled_cache=cache)
        assert cold.extra["compiled_tdg"]["cache_hit"] is False
        warm = run_experiment(spec(fidelity="replay"), compiled_cache=cache)
        assert warm.extra["compiled_tdg"]["cache_hit"] is True
        assert warm.makespan == cold.makespan
        # The analytic tier resolves through the same alias.
        ana = run_experiment(spec(fidelity="analytic"), compiled_cache=cache)
        assert ana.extra["compiled_tdg"]["cache_hit"] is True

    def test_deterministic_across_calls(self):
        a = run_experiment(spec(fidelity="replay"))
        b = run_experiment(spec(fidelity="replay"))
        assert a.makespan == b.makespan
        assert a.to_dict() == b.to_dict()


class TestCampaignFidelity:
    def test_fidelity_override_rewrites_specs(self):
        specs = [spec(), spec(params={**PARAMS, "tpl": 8})]
        out = run_campaign(specs, progress=False, fidelity="replay")
        assert len(out.records) == 2
        for rec in out.records:
            assert rec.result.extra["fidelity"] == "replay"

    def test_override_keys_distinct_from_des(self):
        s = spec()
        out = run_campaign([s], progress=False, fidelity="analytic")
        rec = out.records[0]
        assert rec.spec.fidelity == "analytic"
        assert rec.spec.key != s.key
        assert rec.result.extra["bounds"] is not None
