"""run_campaign: fan-out determinism, cache reuse, retry/timeout robustness."""

from __future__ import annotations

import pytest

from repro.campaign.bus import CampaignBus
from repro.campaign.cache import ResultCache
from repro.campaign.engine import run_campaign
from repro.campaign.runner import run_experiment
from repro.campaign.spec import ExperimentSpec
from repro.memory.machine import tiny_test_machine
from repro.runtime import presets
from repro.util.serde import canonical_json

CFG = presets.mpc_omp(tiny_test_machine(4), n_threads=4)


def spec(**kw) -> ExperimentSpec:
    kw.setdefault("app", "lulesh")
    kw.setdefault("config", CFG)
    kw.setdefault("params", {"s": 6, "iterations": 1, "tpl": 2})
    return ExperimentSpec(**kw)


def fingerprints(result) -> list[str]:
    return [canonical_json(r.to_dict()) for r in result.results]


SPECS = [spec().with_params(tpl=t) for t in (2, 3, 4, 6, 8, 12, 16, 24)]


class TestSerial:
    def test_runs_in_order(self):
        out = run_campaign(SPECS[:3])
        assert out.ok
        assert [r.spec for r in out.records] == SPECS[:3]
        assert out.n_executed == 3

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_campaign(SPECS[:3], cache=cache)
        second = run_campaign(SPECS[:3], cache=cache)
        assert second.n_cached == 3 and second.n_executed == 0
        assert fingerprints(first) == fingerprints(second)

    def test_failure_does_not_abort_campaign(self):
        # pr*pc != ranks makes the runner raise for this spec only.
        bad = spec(app="cholesky", params={"n": 64, "b": 32, "pr": 2, "pc": 2})
        out = run_campaign([SPECS[0], bad, SPECS[1]], retries=0)
        assert out.n_failed == 1
        assert not out.records[1].ok
        assert "ranks" in out.records[1].error
        assert out.records[0].ok and out.records[2].ok

    def test_duplicate_specs_run_once(self):
        out = run_campaign([SPECS[0], SPECS[0], SPECS[1]])
        assert out.ok
        assert out.n_executed == 2  # the duplicate is filled, not re-run
        assert out.records[1].cached
        fp = fingerprints(out)
        assert fp[0] == fp[1]


class TestParallelDeterminism:
    def test_eight_workers_bitwise_identical_to_serial(self, tmp_path):
        serial = run_campaign(SPECS)
        assert serial.ok
        parallel = run_campaign(SPECS, jobs=8, cache=ResultCache(tmp_path))
        assert parallel.ok
        assert fingerprints(parallel) == fingerprints(serial)

    def test_second_parallel_pass_all_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_campaign(SPECS[:4], jobs=4, cache=cache)
        assert first.ok and first.n_executed == 4
        second = run_campaign(SPECS[:4], jobs=4, cache=cache)
        assert second.n_executed == 0
        assert second.n_cached == 4
        assert fingerprints(first) == fingerprints(second)

    def test_mutating_one_spec_reruns_exactly_that_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_campaign(SPECS[:4], jobs=2, cache=cache)
        mutated = list(SPECS[:4])
        mutated[2] = mutated[2].with_params(tpl=99)
        out = run_campaign(mutated, jobs=2, cache=cache)
        assert out.n_executed == 1
        assert out.n_cached == 3
        assert not out.records[2].cached

    def test_no_resume_reexecutes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_campaign(SPECS[:3], jobs=2, cache=cache)
        out = run_campaign(SPECS[:3], jobs=2, cache=cache, reuse_cache=False)
        assert out.n_executed == 3 and out.n_cached == 0


class TestRobustness:
    def test_worker_death_retries_once_then_fails(self, tmp_path):
        # An invalid spec param set makes every worker die; with the
        # default retry-once the record shows two attempts.
        bad = spec(params={"s": 6, "iterations": 1, "tpl": 2, "bogus": 1})
        out = run_campaign([bad], jobs=2, cache=ResultCache(tmp_path))
        assert out.n_failed == 1
        assert out.records[0].attempts == 2
        assert "bogus" in out.records[0].error  # worker traceback captured

    def test_timeout_kills_and_fails(self, tmp_path):
        # A run far too big to finish within the deadline.
        big = spec(app="cholesky", params={"n": 4096, "b": 16})
        out = run_campaign(
            [big], jobs=1, cache=ResultCache(tmp_path), timeout=0.2, retries=0
        )
        assert out.n_failed == 1
        assert "timed out" in out.records[0].error
        assert out.records[0].attempts == 1

    def test_retries_validated(self):
        with pytest.raises(ValueError, match="retries"):
            run_campaign([], retries=-1)


class TestBusEvents:
    def test_serial_events(self, tmp_path):
        events: list[tuple] = []
        bus = CampaignBus()
        bus.subscribe("run_start", lambda i, s, a: events.append(("start", i)))
        bus.subscribe("run_done", lambda i, s, r, w: events.append(("done", i)))
        bus.subscribe("run_cached", lambda i, s, r: events.append(("cached", i)))
        bus.subscribe("campaign_done", lambda r: events.append(("fin",)))
        cache = ResultCache(tmp_path)
        run_campaign(SPECS[:2], cache=cache, bus=bus)
        assert events == [("start", 0), ("done", 0), ("start", 1), ("done", 1),
                          ("fin",)]
        events.clear()
        run_campaign(SPECS[:2], cache=cache, bus=bus)
        assert events == [("cached", 0), ("cached", 1), ("fin",)]

    def test_failed_event(self):
        failed: list[int] = []
        bus = CampaignBus()
        bus.subscribe("run_failed", lambda i, s, e: failed.append(i))
        bad = spec(app="cholesky", params={"n": 64, "b": 32, "pr": 2, "pc": 2})
        run_campaign([bad], retries=0, bus=bus)
        assert failed == [0]


class TestSpecKeyInResult:
    def test_result_carries_spec_key(self):
        s = SPECS[0]
        assert run_experiment(s).extra["spec_key"] == s.key

    def test_campaign_result_to_dict_is_deterministic(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = run_campaign(SPECS[:3], jobs=2, cache=cache)
        b = run_campaign(SPECS[:3], jobs=2, cache=cache)
        da, db = a.to_dict(), b.to_dict()
        # cached-ness (and hence attempt counts) differ between passes;
        # everything else is bitwise equal
        for run in da["runs"] + db["runs"]:
            run["cached"] = None
            run["attempts"] = None
        da["n_cached"] = db["n_cached"] = None
        da["n_executed"] = db["n_executed"] = None
        assert canonical_json(da) == canonical_json(db)
