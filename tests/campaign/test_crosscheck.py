"""Golden-set cross-check: the fidelity ladder's executable contract.

The row/report mechanics are tested on synthetic numbers; the full
golden-set run (19 specs x 3 tiers through the real campaign engine) is
the acceptance gate for the replay and analytic models.
"""

from __future__ import annotations

import pytest

from repro.campaign.crosscheck import (
    REPLAY_TOLERANCE,
    CrossCheckReport,
    CrossCheckRow,
    cross_check,
    golden_specs,
)


def row(des=1.0, replay=1.0, lower=0.5, upper=2.0) -> CrossCheckRow:
    return CrossCheckRow(
        label="x", key="k", des=des, replay=replay, lower=lower, upper=upper
    )


class TestRowMechanics:
    def test_rel_err_signed(self):
        assert row(des=1.0, replay=1.05).rel_err == pytest.approx(0.05)
        assert row(des=1.0, replay=0.95).rel_err == pytest.approx(-0.05)

    def test_bracketing(self):
        assert row().brackets_des and row().brackets_replay
        assert not row(des=3.0).brackets_des
        assert not row(replay=0.2).brackets_replay

    def test_ok_combines_all_three(self):
        assert row().ok(0.08)
        assert not row(replay=1.2).ok(0.08)  # tolerance breach
        assert not row(des=0.4).ok(0.08)  # bracket breach
        # Just inside the bound counts as ok.
        assert row(replay=1.079).ok(0.08)

    def test_report_gates(self):
        good = CrossCheckReport(rows=[row(), row(replay=1.01)])
        assert good.ok
        assert good.worst_rel_err == pytest.approx(0.01)
        bad = CrossCheckReport(rows=[row(replay=1.5)])
        assert not bad.ok
        assert len(bad.violations) == 1
        errored = CrossCheckReport(rows=[row()], errors={"s": "boom"})
        assert not errored.ok
        assert "FAILED" in errored.summary()
        assert "OK" in good.summary()

    def test_to_dict_round(self):
        d = CrossCheckReport(rows=[row()]).to_dict()
        assert d["ok"] is True
        assert d["tolerance"] == REPLAY_TOLERANCE
        assert d["rows"][0]["label"] == "x"


class TestGoldenSet:
    def test_exactly_nineteen_des_specs(self):
        specs = golden_specs()
        assert len(specs) == 19
        assert all(s.fidelity == "des" for s in specs)
        assert all(s.ranks == 1 and s.engine == "task" for s in specs)
        assert {s.app for s in specs} == {"lulesh", "hpcg", "cholesky"}
        assert len({s.key for s in specs}) == 19

    @pytest.mark.slow
    def test_golden_set_cross_check_holds(self):
        report = cross_check(progress=False)
        assert report.ok, report.summary() + "".join(
            f"\n  {r.label}: rel_err={r.rel_err:+.3f} "
            f"[{r.lower:.4g}, {r.upper:.4g}] des={r.des:.4g} "
            f"replay={r.replay:.4g}"
            for r in report.violations
        ) + "".join(f"\n  {k}: {v}" for k, v in report.errors.items())
        assert len(report.rows) == 19
        assert report.worst_rel_err <= REPLAY_TOLERANCE
