"""ExperimentSpec: value semantics, validation, serialization round-trips."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign.spec import APPS, ExperimentSpec, dump_specs, load_specs
from repro.core.optimizations import OptimizationSet
from repro.core.throttling import ThrottleConfig
from repro.memory.machine import tiny_test_machine
from repro.mpi.network import NetworkSpec
from repro.runtime import presets
from repro.runtime.costs import DiscoveryCosts, SchedulerCosts
from repro.runtime.runtime import RuntimeConfig

CFG = presets.mpc_omp(tiny_test_machine(4), n_threads=4)


def spec(**kw) -> ExperimentSpec:
    kw.setdefault("app", "lulesh")
    kw.setdefault("config", CFG)
    kw.setdefault("params", {"s": 8, "iterations": 1, "tpl": 4})
    return ExperimentSpec(**kw)


class TestValueSemantics:
    def test_param_order_does_not_matter(self):
        a = spec(params={"s": 8, "tpl": 4})
        b = spec(params={"tpl": 4, "s": 8})
        assert a == b
        assert hash(a) == hash(b)
        assert a.key == b.key

    def test_specs_are_hashable_dict_keys(self):
        d = {spec(): "one", spec(seed=1): "two"}
        assert d[spec()] == "one"
        assert d[spec(seed=1)] == "two"

    def test_any_field_change_changes_key(self):
        base = spec()
        assert base.key != spec(seed=7).key
        assert base.key != spec(scale=0.5).key
        assert base.key != spec(params={"s": 8, "iterations": 1, "tpl": 8}).key
        assert base.key != spec(app="hpcg", params={"tpl": 4}).key

    def test_key_is_content_hash_not_process_hash(self):
        # sha256 hex: stable across processes (unlike builtin hash()).
        k = spec().key
        assert len(k) == 64
        assert k == spec().key

    def test_with_params_merges(self):
        s2 = spec().with_params(tpl=16)
        assert s2.params_dict["tpl"] == 16
        assert s2.params_dict["s"] == 8
        assert spec().params_dict["tpl"] == 4  # original untouched

    def test_label_mentions_app_and_engine(self):
        s = spec(ranks=8)
        assert "lulesh" in s.label
        assert "ranks=8" in s.label


class TestValidation:
    def test_unknown_app(self):
        with pytest.raises(ValueError, match="unknown app"):
            spec(app="linpack")

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            spec(engine="gpu")

    def test_cholesky_has_no_forloop(self):
        with pytest.raises(ValueError, match="fork-join"):
            spec(app="cholesky", params={}, engine="forloop")

    def test_bad_ranks(self):
        with pytest.raises(ValueError, match="ranks"):
            spec(ranks=0)

    def test_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            spec(scale=0.0)

    def test_non_scalar_param(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            spec(params={"s": [1, 2]})

    def test_duplicate_param(self):
        with pytest.raises(ValueError, match="duplicate"):
            spec(params=[("s", 8), ("s", 9)])

    def test_unknown_field_in_dict(self):
        d = spec().to_dict()
        d["frobnicate"] = 1
        with pytest.raises(ValueError, match="frobnicate"):
            ExperimentSpec.from_dict(d)


class TestRoundTrip:
    def test_dict_round_trip(self):
        for s in (
            spec(),
            spec(app="hpcg", params={"n_rows": 512, "tpl": 4}, ranks=8,
                 network=NetworkSpec(), seed=3, scale=0.5),
            spec(app="cholesky", params={"n": 128, "b": 32}, engine="task"),
        ):
            assert ExperimentSpec.from_dict(s.to_dict()) == s

    def test_json_round_trip_is_canonical(self):
        s = spec()
        assert ExperimentSpec.from_json(s.to_json()) == s
        # canonical: sorted keys, no whitespace drift
        assert s.to_json() == s.to_json()
        assert json.loads(s.to_json())["app"] == "lulesh"

    def test_spec_file_round_trip(self):
        specs = [spec(), spec(seed=1), spec(app="hpcg", params={"tpl": 2})]
        assert load_specs(dump_specs(specs)) == specs

    def test_load_specs_accepts_bare_list(self):
        specs = [spec()]
        text = json.dumps([s.to_dict() for s in specs])
        assert load_specs(text) == specs

    def test_load_specs_rejects_garbage(self):
        with pytest.raises(ValueError):
            load_specs('{"not_specs": []}')
        with pytest.raises(ValueError):
            load_specs('"just a string"')


# ----------------------------------------------------------------------
# Hypothesis: serialization round-trips hold for arbitrary field values.
# ----------------------------------------------------------------------
opt_sets = st.builds(
    OptimizationSet,
    a=st.booleans(), b=st.booleans(), c=st.booleans(), p=st.booleans(),
)
throttles = st.sampled_from(
    [ThrottleConfig.disabled(), ThrottleConfig.mpc_default(),
     ThrottleConfig.ready_bound(64)]
)
configs = st.builds(
    RuntimeConfig,
    machine=st.just(tiny_test_machine(4)),
    n_threads=st.sampled_from([None, 2, 4]),
    opts=opt_sets,
    throttle=throttles,
    discovery=st.builds(DiscoveryCosts),
    sched=st.builds(SchedulerCosts),
    scheduler=st.sampled_from(["lifo-df", "fifo-bf"]),
    seed=st.integers(0, 2**31 - 1),
    name=st.sampled_from(["a", "rt-x", "mpc-omp"]),
)
param_values = st.one_of(
    st.integers(-1000, 1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.text(max_size=8),
)
specs_strategy = st.builds(
    ExperimentSpec,
    app=st.sampled_from([a for a in APPS if a != "cholesky"]),
    config=configs,
    params=st.dictionaries(
        st.text(st.characters(categories=("Ll",)), min_size=1, max_size=6),
        param_values,
        max_size=4,
    ),
    engine=st.just("task"),
    ranks=st.integers(1, 16),
    seed=st.integers(0, 2**31 - 1),
    scale=st.floats(0.001, 10.0, allow_nan=False),
    network=st.one_of(st.none(), st.builds(NetworkSpec)),
)


class TestHypothesisRoundTrip:
    @settings(max_examples=50, deadline=None, derandomize=True)
    @given(specs_strategy)
    def test_spec_round_trip(self, s: ExperimentSpec):
        back = ExperimentSpec.from_dict(json.loads(s.to_json()))
        assert back == s
        assert back.key == s.key

    @settings(max_examples=50, deadline=None, derandomize=True)
    @given(configs)
    def test_runtime_config_round_trip(self, cfg: RuntimeConfig):
        back = RuntimeConfig.from_dict(cfg.to_dict())
        assert back == cfg
        assert hash(back) == hash(cfg)
