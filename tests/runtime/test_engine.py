"""Unit tests for the DES event queue."""

import pytest

from repro.runtime.engine import EventQueue


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        log = []
        q.push(2.0, log.append, "b")
        q.push(1.0, log.append, "a")
        q.push(3.0, log.append, "c")
        q.run()
        assert log == ["a", "b", "c"]

    def test_fifo_ties(self):
        q = EventQueue()
        log = []
        for i in range(5):
            q.push(1.0, log.append, i)
        q.run()
        assert log == list(range(5))

    def test_clock_advances(self):
        q = EventQueue()
        seen = []
        q.push(0.5, lambda: seen.append(q.now))
        q.push(1.5, lambda: seen.append(q.now))
        q.run()
        assert seen == [0.5, 1.5]

    def test_push_now_runs_after_current_ties(self):
        q = EventQueue()
        log = []
        def first():
            log.append("first")
            q.push_now(lambda: log.append("chained"))
        q.push(1.0, first)
        q.push(1.0, lambda: log.append("second"))
        q.run()
        assert log == ["first", "second", "chained"]

    def test_events_scheduled_from_handlers(self):
        q = EventQueue()
        log = []
        def recurse(n):
            log.append(n)
            if n < 3:
                q.push(q.now + 1.0, recurse, n + 1)
        q.push(0.0, recurse, 0)
        q.run()
        assert log == [0, 1, 2, 3]
        assert q.now == 3.0


class TestGuards:
    def test_push_in_past_rejected(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.step()
        with pytest.raises(ValueError, match="before current time"):
            q.push(0.5, lambda: None)

    def test_step_on_empty(self):
        q = EventQueue()
        assert not q.step()

    def test_max_events_budget(self):
        q = EventQueue()
        def forever():
            q.push(q.now + 1.0, forever)
        q.push(0.0, forever)
        with pytest.raises(RuntimeError, match="budget"):
            q.run(max_events=100)

    def test_max_events_sufficient(self):
        q = EventQueue()
        for i in range(5):
            q.push(float(i), lambda: None)
        q.run(max_events=10)
        assert len(q) == 0
        assert q.n_dispatched == 5
