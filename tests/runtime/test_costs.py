"""Unit tests for the discovery/scheduler cost models."""

import pytest

from repro.core.dependences import ResolutionResult
from repro.core.program import TaskSpec
from repro.runtime.costs import DiscoveryCosts, SchedulerCosts
from repro.util.units import us


class TestDiscoveryCosts:
    def test_creation_cost_components(self):
        c = DiscoveryCosts(
            c_task=1.0 * us,
            c_dep=0.1 * us,
            c_edge=0.5 * us,
            c_edge_skip=0.2 * us,
            c_redirect=2.0 * us,
        )
        res = ResolutionResult(n_addrs=3, n_edges=2, n_skipped=4, n_redirects=1)
        spec = TaskSpec(name="t")
        expected = (1.0 + 0.3 + 1.0 + 0.8 + 2.0) * us
        assert c.creation_cost(spec, res) == pytest.approx(expected)

    def test_replay_cost(self):
        c = DiscoveryCosts(c_replay=0.25 * us, c_fp_byte=2e-9)
        spec = TaskSpec(name="t", fp_bytes=100)
        assert c.replay_cost(spec) == pytest.approx(0.25 * us + 200e-9)

    def test_replay_much_cheaper_than_creation(self):
        """The premise of §3.2: replay is a single memcpy."""
        c = DiscoveryCosts()
        spec = TaskSpec(name="t", fp_bytes=48)
        res = ResolutionResult(n_addrs=8, n_edges=8)
        assert c.replay_cost(spec) < c.creation_cost(spec, res) / 5

    def test_scaled(self):
        c = DiscoveryCosts().scaled(0.1)
        assert c.c_task == pytest.approx(DiscoveryCosts().c_task * 0.1)
        assert c.c_edge == pytest.approx(DiscoveryCosts().c_edge * 0.1)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            DiscoveryCosts().scaled(-1.0)

    def test_negative_constant_rejected(self):
        with pytest.raises(ValueError):
            DiscoveryCosts(c_task=-1.0)

    def test_edge_cost_dominates_at_scale(self):
        """Table 2 calibration: at ~32 edges/task, edges dominate."""
        c = DiscoveryCosts()
        spec = TaskSpec(name="t")
        res = ResolutionResult(n_addrs=7, n_edges=32)
        total = c.creation_cost(spec, res)
        assert c.c_edge * 32 > 0.5 * total


class TestSchedulerCosts:
    def test_scaled(self):
        s = SchedulerCosts().scaled(0.5)
        assert s.c_pop == pytest.approx(SchedulerCosts().c_pop * 0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SchedulerCosts(c_pop=-1e-9)

    def test_steal_costlier_than_pop(self):
        s = SchedulerCosts()
        assert s.c_steal > s.c_pop
