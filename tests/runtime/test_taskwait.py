"""Tests for the taskwait marker (§4.1 ablation support)."""

import pytest

from repro.core import OptimizationSet
from repro.core.program import CommKind, CommSpec, IterationSpec, Program, TaskSpec
from repro.core.task import DepMode
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime


def cfg(**kw):
    kw.setdefault("machine", tiny_test_machine(4))
    return RuntimeConfig(**kw)


def program_with_taskwait(iterations=1):
    specs = [
        TaskSpec(name="a", depends=((0, DepMode.OUT),), flops=5000.0),
        TaskSpec(name="b", depends=((1, DepMode.OUT),), flops=5000.0),
        TaskSpec(name="taskwait", barrier=True),
        TaskSpec(name="c", depends=((2, DepMode.OUT),), flops=5000.0),
    ]
    return Program.from_template(specs, iterations, persistent_candidate=True)


class TestTaskwaitSpec:
    def test_barrier_cannot_carry_deps(self):
        with pytest.raises(ValueError, match="taskwait"):
            TaskSpec(name="tw", barrier=True, depends=((0, DepMode.IN),))

    def test_barrier_cannot_carry_comm(self):
        with pytest.raises(ValueError, match="taskwait"):
            TaskSpec(name="tw", barrier=True,
                     comm=CommSpec(CommKind.IALLREDUCE, 8))


class TestTaskwaitExecution:
    def test_blocks_producer(self):
        prog = program_with_taskwait()
        rt = TaskRuntime(prog, cfg(trace=True))
        r = rt.run()
        assert r.n_tasks == 3
        cols = r.trace.arrays()
        names = r.trace.names()
        start_c = cols["start"][names.index("c")]
        end_ab = max(cols["end"][names.index("a")], cols["end"][names.index("b")])
        assert start_c >= end_ab - 1e-12

    def test_without_taskwait_c_runs_concurrently(self):
        specs = [
            TaskSpec(name="a", depends=((0, DepMode.OUT),), flops=50_000.0),
            TaskSpec(name="c", depends=((2, DepMode.OUT),), flops=50_000.0),
        ]
        prog = Program.from_template(specs, 1)
        r = TaskRuntime(prog, cfg(trace=True)).run()
        cols = r.trace.arrays()
        names = r.trace.names()
        assert cols["start"][names.index("c")] < cols["end"][names.index("a")]

    def test_persistent_replay_honors_taskwait(self):
        prog = program_with_taskwait(iterations=3)
        r = TaskRuntime(prog, cfg(opts=OptimizationSet.parse("abcp"), trace=True)).run()
        assert r.n_tasks == 9
        cols = r.trace.arrays()
        names = r.trace.names()
        for k in range(len(names)):
            pass  # trace sanity below per iteration
        for it in range(3):
            mask = cols["iteration"] == it
            its_names = [n for n, m in zip(names, mask) if m]
            c_start = cols["start"][mask][its_names.index("c")]
            ab_end = max(
                cols["end"][mask][its_names.index("a")],
                cols["end"][mask][its_names.index("b")],
            )
            assert c_start >= ab_end - 1e-12

    def test_taskwait_position_change_detected(self):
        from repro.core.persistent import PersistentStructureError

        it0 = [
            TaskSpec(name="a", depends=((0, DepMode.OUT),)),
            TaskSpec(name="taskwait", barrier=True),
            TaskSpec(name="b", depends=((1, DepMode.OUT),)),
        ]
        it1 = [
            TaskSpec(name="a", depends=((0, DepMode.OUT),)),
            TaskSpec(name="b", depends=((1, DepMode.OUT),)),
            TaskSpec(name="taskwait", barrier=True),
        ]
        prog = Program(
            [IterationSpec(index=0, tasks=it0), IterationSpec(index=1, tasks=it1)],
            persistent_candidate=True,
        )
        rt = TaskRuntime(prog, cfg(opts=OptimizationSet.parse("p")))
        rt.start()
        with pytest.raises(PersistentStructureError, match="taskwait"):
            rt.engine.run()


class TestLuleshTaskwaitAblation:
    def test_taskwait_variant_not_faster(self):
        """§4.1: bracketing communications with taskwait loses the overlap.

        The full effect (the paper's ~7%, reproduced at 7.4% by
        bench_fig7_distributed) needs the 26-neighbor communication volume
        of an interior rank; this 8-rank smoke config only checks the
        direction (taskwait never helps).
        """
        from repro.analysis.calibration import scaled_mpc, scaled_epyc
        from repro.apps.lulesh import LuleshConfig, build_task_program
        from repro.cluster import Cluster, RankGrid
        from repro.mpi.network import bxi_like

        grid = RankGrid.cubic(8)
        cfg_l = LuleshConfig(s=32, iterations=3, tpl=32, flops_per_item=25.0)
        times = {}
        for tw in (False, True):
            programs = [
                build_task_program(
                    cfg_l, opt_a=True, neighbors=grid.neighbors(r),
                    taskwait_around_comm=tw,
                )
                for r in range(8)
            ]
            cluster = Cluster(8, network=bxi_like())
            res = cluster.run(
                programs,
                [scaled_mpc(scaled_epyc(), opts="abc", n_threads=4) for _ in range(8)],
            )
            times[tw] = res.makespan
        assert times[True] >= times[False] * 0.99
