"""Tests of the fork-join (parallel-for) reference model."""

import numpy as np
import pytest

from repro.core.program import CommKind
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig
from repro.runtime.parallel_for import (
    BlockingCollectiveSpec,
    ForIteration,
    ForProgram,
    HaloExchangeSpec,
    LoopSpec,
    P2PSpec,
    ParallelForRuntime,
)


def cfg(**kw):
    kw.setdefault("machine", tiny_test_machine(4))
    return RuntimeConfig(**kw)


def run_program(phases, iterations=1, **kw):
    prog = ForProgram([ForIteration(phases=list(phases)) for _ in range(iterations)])
    return ParallelForRuntime(prog, cfg(**kw)).run()


class TestLoops:
    def test_flop_bound_loop(self):
        r = run_program([LoopSpec("l", flops=4e6, bytes_streamed=0)])
        # 4 threads at 1 Gflop/s -> 1 ms plus barrier.
        assert r.makespan == pytest.approx(1e-3, rel=0.05)

    def test_memory_bound_loop(self):
        r = run_program([LoopSpec("l", flops=0.0, bytes_streamed=10_000_000)])
        assert r.makespan == pytest.approx(1e-3, rel=0.05)  # 10MB / 10GB/s

    def test_work_accounted_on_all_threads(self):
        r = run_program([LoopSpec("l", flops=4e6, bytes_streamed=0)])
        assert np.allclose(r.work, r.work[0])
        assert r.work[0] > 0

    def test_barrier_counts_as_overhead(self):
        r = run_program([LoopSpec("l", flops=1000.0, bytes_streamed=0)])
        assert np.all(r.overhead > 0)

    def test_loops_serialize(self):
        r1 = run_program([LoopSpec("a", flops=4e6, bytes_streamed=0)])
        r2 = run_program([LoopSpec("a", flops=4e6, bytes_streamed=0)] * 3)
        assert r2.makespan == pytest.approx(3 * r1.makespan, rel=0.01)

    def test_chunked_footprint_reuse(self):
        """A loop set with a cache-resident workset speeds up after the
        first pass."""
        loop = LoopSpec("l", flops=0.0, bytes_streamed=4096,
                        footprint=((1, 4096),))
        r = run_program([loop], iterations=3)
        # First iteration pays DRAM, later ones L3.
        assert r.mem.bytes_dram == 4096
        assert r.mem.bytes_l3 == 2 * 4096

    def test_negative_loop_rejected(self):
        with pytest.raises(ValueError):
            LoopSpec("l", flops=-1.0, bytes_streamed=0)


class TestCommPhases:
    def test_blocking_collective_advances_clock(self):
        from repro.cluster.cluster import Cluster

        cluster = Cluster(2)
        prog = ForProgram([ForIteration(phases=[BlockingCollectiveSpec(8)])])
        prog2 = ForProgram([ForIteration(phases=[
            LoopSpec("pre", flops=4e6, bytes_streamed=0),
            BlockingCollectiveSpec(8),
        ])])
        res = cluster.run([prog, prog2], [cfg(), cfg()])
        # Rank 0 has to wait for rank 1's pre-loop before its collective.
        c0 = res.results[0].comm[0]
        assert c0.duration > 0.9e-3

    def test_halo_exchange_waits_all(self):
        from repro.cluster.cluster import Cluster

        cluster = Cluster(2)
        def prog(rank):
            ops = (
                P2PSpec(CommKind.ISEND, 1 - rank, 0, 1000),
                P2PSpec(CommKind.IRECV, 1 - rank, 0, 1000),
            )
            return ForProgram([ForIteration(phases=[HaloExchangeSpec(ops)])])
        res = cluster.run([prog(0), prog(1)], [cfg(), cfg()])
        for r in res.results:
            assert len(r.comm) == 2

    def test_empty_halo_phase(self):
        r = run_program([HaloExchangeSpec(())])
        assert r.makespan >= 0

    def test_comm_without_communicator_raises(self):
        prog = ForProgram([ForIteration(phases=[BlockingCollectiveSpec(8)])])
        rt = ParallelForRuntime(prog, cfg())
        with pytest.raises(RuntimeError, match="communicator"):
            rt.run()


class TestLifecycle:
    def test_result_before_done_raises(self):
        prog = ForProgram([ForIteration(phases=[LoopSpec("l", 100.0, 0)])])
        rt = ParallelForRuntime(prog, cfg())
        rt.start()
        with pytest.raises(RuntimeError):
            rt.result()

    def test_double_start_rejected(self):
        prog = ForProgram([ForIteration(phases=[])])
        rt = ParallelForRuntime(prog, cfg())
        rt.start()
        with pytest.raises(RuntimeError, match="twice"):
            rt.start()

    def test_empty_program(self):
        r = run_program([])
        assert r.makespan == 0.0

    def test_unknown_phase_type_rejected(self):
        prog = ForProgram([ForIteration(phases=["bogus"])])
        rt = ParallelForRuntime(prog, cfg())
        rt.start()
        with pytest.raises(TypeError):
            rt.engine.run()
