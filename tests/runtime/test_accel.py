"""Tests for the accelerator-offloading extension (§7 future work)."""

import pytest

from repro.accel import Accelerator, AcceleratorSpec
from repro.core import OptimizationSet
from repro.core.program import Program, TaskSpec
from repro.core.task import DepMode, Task
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime
from repro.runtime.engine import EventQueue


def spec(**kw):
    return AcceleratorSpec(**kw)


class TestAcceleratorSpec:
    def test_defaults_valid(self):
        spec()

    def test_validation(self):
        with pytest.raises(ValueError):
            spec(n_streams=0)
        with pytest.raises(ValueError):
            spec(launch_overhead=-1.0)

    def test_scaled(self):
        s = spec().scaled(0.1)
        assert s.launch_overhead == pytest.approx(spec().launch_overhead * 0.1)


class TestAcceleratorModel:
    def make(self, **kw):
        engine = EventQueue()
        return Accelerator(spec(**kw), engine), engine

    def task(self, tid=0, flops=1e6, footprint=((1, 1024),)):
        t = Task(tid, "k", flops=flops, footprint=footprint)
        t.device = True
        return t

    def test_kernel_duration_components(self):
        acc, _ = self.make(n_streams=1)
        d, h2d = acc.kernel_duration(self.task())
        assert h2d == 1024
        expected = (
            acc.spec.launch_overhead
            + 1024 / acc.spec.xfer_bw
            + max(1e6 / acc.spec.flops_per_stream, 1024 / acc.spec.mem_bw)
        )
        assert d == pytest.approx(expected)

    def test_device_residency_skips_transfer(self):
        acc, _ = self.make(n_streams=1)
        _, h2d1 = acc.kernel_duration(self.task(0))
        _, h2d2 = acc.kernel_duration(self.task(1))
        assert h2d1 == 1024
        assert h2d2 == 0
        assert acc.stats.resident_hits == 1

    def test_streams_run_concurrently(self):
        acc, engine = self.make(n_streams=2)
        done = []
        f1 = acc.submit(self.task(0, footprint=((1, 64),)), 0.0, done.append)
        f2 = acc.submit(self.task(1, footprint=((2, 64),)), 0.0, done.append)
        # Two streams: both start at t=0 (similar finish times).
        assert abs(f1 - f2) < 1e-6

    def test_single_stream_serializes(self):
        acc, engine = self.make(n_streams=1)
        f1 = acc.submit(self.task(0, footprint=((1, 64),)), 0.0, lambda t: None)
        f2 = acc.submit(self.task(1, footprint=((2, 64),)), 0.0, lambda t: None)
        assert f2 > f1

    def test_utilization_bounds(self):
        acc, _ = self.make()
        acc.submit(self.task(), 0.0, lambda t: None)
        assert 0.0 <= acc.utilization(1.0) <= 1.0
        assert acc.utilization(0.0) == 0.0


class TestOffloadedExecution:
    def program(self, n=8, device=True, iterations=1):
        specs = [
            TaskSpec(name=f"k{i}", depends=(((i, DepMode.INOUT)),),
                     flops=2e6, footprint=((i, 4096),), device=device)
            for i in range(n)
        ]
        specs.append(TaskSpec(
            name="sink",
            depends=tuple((i, DepMode.IN) for i in range(n)),
            flops=100.0,
        ))
        return Program.from_template(specs, iterations)

    def cfg(self, **kw):
        kw.setdefault("machine", tiny_test_machine(4))
        kw.setdefault("accelerator", spec())
        return RuntimeConfig(**kw)

    def test_offloaded_tasks_complete(self):
        rt = TaskRuntime(self.program(), self.cfg())
        r = rt.run()
        assert r.n_tasks == 9
        assert rt.accelerator.stats.kernels == 8

    def test_sink_waits_for_kernels(self):
        rt = TaskRuntime(self.program(), self.cfg(trace=True))
        rt.run()
        sink = rt.graph.tasks[-1]
        for k in rt.graph.tasks[:-1]:
            assert k.completed_at <= sink.started_at + 1e-12

    def test_device_flag_ignored_without_accelerator(self):
        rt = TaskRuntime(
            self.program(),
            RuntimeConfig(machine=tiny_test_machine(4)),
        )
        r = rt.run()
        assert r.n_tasks == 9
        assert rt.accelerator is None

    def test_host_only_pays_launch(self):
        """Workers are free while kernels run: host work ~= launch costs."""
        r = TaskRuntime(self.program(), self.cfg()).run()
        launches = 8 * spec().launch_overhead
        assert r.work_total < launches + 8 * 2e6 / 1e9 * 0.5

    def test_offload_with_persistent_graph(self):
        prog = self.program(iterations=4)
        rt = TaskRuntime(
            prog, self.cfg(opts=OptimizationSet.parse("abcp"))
        )
        r = rt.run()
        assert r.n_tasks == 4 * 9
        assert rt.accelerator.stats.kernels == 4 * 8

    def test_residency_reuse_across_iterations(self):
        """Device-resident chunks skip H2D on later iterations — the §7
        offload analogue of cache reuse."""
        prog = self.program(iterations=3)
        rt = TaskRuntime(prog, self.cfg(opts=OptimizationSet.parse("abcp")))
        rt.run()
        st = rt.accelerator.stats
        assert st.h2d_bytes == 8 * 4096          # only the first iteration
        assert st.resident_hits == 2 * 8


class TestLuleshOffload:
    def test_elem_loops_marked_device(self):
        from repro.apps.lulesh import LuleshConfig, build_task_program

        prog = build_task_program(
            LuleshConfig(s=12, iterations=1, tpl=4), offload=True
        )
        elem = [s for s in prog.iterations[0].tasks
                if s.name.startswith("CalcKinematicsForElems")]
        node = [s for s in prog.iterations[0].tasks
                if s.name.startswith("CalcPositionForNodes")]
        assert all(s.device for s in elem)
        assert not any(s.device for s in node)

    def test_offloaded_lulesh_runs(self):
        from repro.apps.lulesh import LuleshConfig, build_task_program

        prog = build_task_program(
            LuleshConfig(s=12, iterations=2, tpl=8), offload=True, opt_a=True
        )
        rt = TaskRuntime(
            prog,
            RuntimeConfig(
                machine=tiny_test_machine(4),
                opts=OptimizationSet.parse("abc"),
                accelerator=spec(),
            ),
        )
        r = rt.run()
        assert r.n_tasks > 0
        assert rt.accelerator.stats.kernels > 0
