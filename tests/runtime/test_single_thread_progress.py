"""Single-thread progress guarantees (regression tests for a real bug).

With one thread, the producer is the only executor; barriers and taskwait
are scheduling points where it must *help* (execute ready tasks) or the
simulation deadlocks.  These tests pin that behavior for every waiting
state.
"""


from repro.core import OptimizationSet, ThrottleConfig
from repro.core.program import CommKind, CommSpec, Program, TaskSpec
from repro.core.task import DepMode
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime


def cfg(**kw):
    kw.setdefault("machine", tiny_test_machine(4))
    kw.setdefault("n_threads", 1)
    return RuntimeConfig(**kw)


class TestSingleThread:
    def test_persistent_barrier_single_thread(self):
        specs = [
            TaskSpec(name="a", depends=((0, DepMode.INOUT),), flops=1000.0),
            TaskSpec(name="b", depends=((1, DepMode.INOUT),), flops=1000.0),
        ]
        prog = Program.from_template(specs, 3, persistent_candidate=True)
        r = TaskRuntime(prog, cfg(opts=OptimizationSet.parse("abcp"))).run()
        assert r.n_tasks == 6

    def test_taskwait_single_thread(self):
        specs = [
            TaskSpec(name="a", depends=((0, DepMode.OUT),), flops=1000.0),
            TaskSpec(name="tw", barrier=True),
            TaskSpec(name="b", depends=((0, DepMode.IN),), flops=1000.0),
        ]
        prog = Program.from_template(specs, 2)
        r = TaskRuntime(prog, cfg()).run()
        assert r.n_tasks == 4

    def test_throttle_single_thread(self):
        specs = [
            TaskSpec(name=f"t{i}", depends=((i, DepMode.OUT),), flops=1000.0)
            for i in range(20)
        ]
        prog = Program.from_template(specs, 1)
        r = TaskRuntime(prog, cfg(throttle=ThrottleConfig(total_cap=2))).run()
        assert r.n_tasks == 20

    def test_detached_comm_single_thread(self):
        specs = [
            TaskSpec(name="red", depends=((0, DepMode.OUT),),
                     comm=CommSpec(CommKind.IALLREDUCE, 8)),
            TaskSpec(name="use", depends=((0, DepMode.IN),), flops=1000.0),
        ]
        prog = Program.from_template(specs, 2, persistent_candidate=True)
        r = TaskRuntime(prog, cfg(opts=OptimizationSet.parse("abcp"))).run()
        assert r.n_tasks == 4

    def test_persistent_barrier_with_taskwait_single_thread(self):
        specs = [
            TaskSpec(name="a", depends=((0, DepMode.INOUT),), flops=1000.0),
            TaskSpec(name="tw", barrier=True),
            TaskSpec(name="b", depends=((1, DepMode.INOUT),), flops=1000.0),
        ]
        prog = Program.from_template(specs, 3, persistent_candidate=True)
        r = TaskRuntime(prog, cfg(opts=OptimizationSet.parse("p"))).run()
        assert r.n_tasks == 6

    def test_work_attributed_to_thread_zero(self):
        specs = [TaskSpec(name="t", depends=((0, DepMode.OUT),), flops=1e6)]
        prog = Program.from_template(specs, 1)
        r = TaskRuntime(prog, cfg()).run()
        assert r.work[0] > 0
