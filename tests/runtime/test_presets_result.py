"""Tests for runtime presets and RunResult derived metrics."""

import pytest

from repro.core import OptimizationSet, ProgramBuilder
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime, presets


class TestPresets:
    def test_mpc_defaults(self):
        cfg = presets.mpc_omp()
        assert cfg.scheduler == "lifo-df"
        assert cfg.throttle.total_cap == 10_000_000
        assert cfg.opts == OptimizationSet.abc()

    def test_mpc_opts_string(self):
        assert presets.mpc_omp(opts="bp").opts == OptimizationSet.parse("bp")

    def test_mpc_overrides(self):
        cfg = presets.mpc_omp(scheduler="fifo-bf", non_overlapped=True)
        assert cfg.scheduler == "fifo-bf"
        assert cfg.non_overlapped

    def test_llvm_shape(self):
        cfg = presets.llvm_like()
        assert cfg.opts.c and not cfg.opts.b
        assert cfg.throttle.ready_cap is not None
        assert cfg.discovery.c_edge > presets.mpc_omp().discovery.c_edge

    def test_llvm_throttling_off(self):
        cfg = presets.llvm_like(throttling=False)
        assert cfg.throttle.ready_cap is None
        assert cfg.throttle.total_cap is None

    def test_gcc_shape(self):
        cfg = presets.gcc_like()
        assert cfg.opts.b and not cfg.opts.c
        assert cfg.scheduler == "fifo-bf"

    def test_discovery_ordering(self):
        """MPC discovers fastest, GCC slowest (per §2.3/§3.3)."""
        m, l, g = presets.mpc_omp(), presets.llvm_like(), presets.gcc_like()
        assert m.discovery.c_task <= l.discovery.c_task <= g.discovery.c_task


class TestRuntimeConfigValidation:
    def test_too_many_threads(self):
        with pytest.raises(ValueError, match="exceeds"):
            RuntimeConfig(machine=tiny_test_machine(2), n_threads=8)

    def test_zero_threads(self):
        with pytest.raises(ValueError):
            RuntimeConfig(machine=tiny_test_machine(2), n_threads=0)

    def test_threads_property_defaults_to_cores(self):
        assert RuntimeConfig(machine=tiny_test_machine(3)).threads == 3


class TestRunResult:
    @pytest.fixture()
    def result(self):
        b = ProgramBuilder("p")
        with b.iteration():
            for i in range(12):
                b.task(f"t{i}", out=[("y", i)], flops=10_000.0)
        return TaskRuntime(
            b.build(), RuntimeConfig(machine=tiny_test_machine(4))
        ).run()

    def test_totals_match_sums(self, result):
        assert result.work_total == pytest.approx(float(result.work.sum()))
        assert result.overhead_total == pytest.approx(float(result.overhead.sum()))

    def test_averages(self, result):
        assert result.work_avg == pytest.approx(result.work_total / 4)

    def test_per_task_metrics(self, result):
        assert result.work_per_task == pytest.approx(result.work_total / 12)
        assert result.overhead_per_task > 0

    def test_spans_ordered(self, result):
        d0, d1 = result.discovery_span
        e0, e1 = result.execution_span
        assert d0 <= d1
        assert e0 <= e1
        assert result.discovery_wall == pytest.approx(d1 - d0)
        assert result.execution_time == pytest.approx(e1 - e0)

    def test_summary_contains_key_numbers(self, result):
        s = result.summary()
        assert "tasks=12" in s
        assert "makespan=" in s

    def test_zero_task_result_metrics(self):
        from repro.core.program import Program

        r = TaskRuntime(
            Program([], name="empty"), RuntimeConfig(machine=tiny_test_machine(2))
        ).run()
        assert r.work_per_task == 0.0
        assert r.overhead_per_task == 0.0


class TestContention:
    def test_shared_pop_contention_charged(self):
        """Popping from shared queues costs more when many threads are busy."""
        from repro.runtime.costs import SchedulerCosts

        b = ProgramBuilder("p")
        with b.iteration():
            for i in range(200):
                b.task(f"t{i}", out=[("y", i)], flops=5000.0)
        prog = b.build()
        lo = TaskRuntime(prog, RuntimeConfig(
            machine=tiny_test_machine(4),
            sched=SchedulerCosts(c_contention=0.0),
        )).run()
        hi = TaskRuntime(prog, RuntimeConfig(
            machine=tiny_test_machine(4),
            sched=SchedulerCosts(c_contention=5e-6),
        )).run()
        assert hi.overhead_total > lo.overhead_total
