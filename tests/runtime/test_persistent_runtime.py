"""Persistent-TDG runtime behavior (§3.2 semantics)."""

import numpy as np
import pytest

from repro.core import OptimizationSet, ProgramBuilder
from repro.core.persistent import PersistentStructureError
from repro.core.program import IterationSpec, Program, TaskSpec
from repro.core.task import DepMode
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime


def cfg(**kw):
    kw.setdefault("machine", tiny_test_machine(4))
    kw.setdefault("opts", OptimizationSet.parse("abcp"))
    return RuntimeConfig(**kw)


def iterative_program(iterations=4, width=8, persistent=True):
    b = ProgramBuilder("iter", persistent_candidate=persistent)
    for _ in range(iterations):
        with b.iteration():
            b.task("head", out=["x"], flops=500.0, fp_bytes=16)
            for i in range(width):
                b.task(f"w{i}", inp=["x"], out=[("y", i)], flops=2000.0, fp_bytes=32)
            b.task("tail", inp=[("y", i) for i in range(width)], flops=500.0, fp_bytes=16)
    return b.build()


class TestReplaySemantics:
    def test_all_iterations_execute(self):
        prog = iterative_program(5, 8)
        r = TaskRuntime(prog, cfg()).run()
        assert r.n_tasks == 5 * 10

    def test_edges_created_once(self):
        prog = iterative_program(5, 8)
        r = TaskRuntime(prog, cfg()).run()
        # One iteration's worth of edges only.
        assert r.edges.created == 8 + 8
        # But released (traversed) once per iteration that used them.
        assert r.extra["edges_released"] >= r.edges.created

    def test_replay_discovery_cheaper(self):
        prog_p = iterative_program(8, 8, persistent=True)
        r_p = TaskRuntime(prog_p, cfg(opts=OptimizationSet.parse("abcp"))).run()
        r_np = TaskRuntime(prog_p, cfg(opts=OptimizationSet.parse("abc"))).run()
        assert r_p.discovery_busy < 0.6 * r_np.discovery_busy

    def test_opt_p_requires_candidate_program(self):
        """A non-annotated program never persists, even with (p) enabled."""
        prog = iterative_program(4, 4, persistent=False)
        rt = TaskRuntime(prog, cfg(opts=OptimizationSet.parse("abcp")))
        r = rt.run()
        assert rt._region is None
        assert r.n_tasks == 4 * 6

    def test_barrier_no_iteration_interleaving(self):
        """The implicit barrier forbids tasks of iteration n+1 starting
        before iteration n completes (Fig. 8 bottom)."""
        prog = iterative_program(4, 8)
        r = TaskRuntime(prog, cfg(trace=True)).run()
        cols = r.trace.arrays()
        for it in range(3):
            end_n = cols["end"][cols["iteration"] == it].max()
            start_n1 = cols["start"][cols["iteration"] == it + 1].min()
            assert start_n1 >= end_n - 1e-12

    def test_non_persistent_can_interleave(self):
        """Without (p), iteration n+1 work may start before n fully ends
        (only the dataflow serializes), so pipelining is possible."""
        b = ProgramBuilder("pipelined", persistent_candidate=True)
        for _ in range(3):
            with b.iteration():
                # Two independent chains: no cross-chain deps, so chains of
                # iteration n+1 can start while the other chain of n runs.
                b.task("a", inout=["xa"], flops=50_000.0)
                b.task("b", inout=["xb"], flops=1000.0)
        prog = b.build()
        r = TaskRuntime(prog, cfg(opts=OptimizationSet.parse("abc"), trace=True, n_threads=4)).run()
        cols = r.trace.arrays()
        start_next = cols["start"][cols["iteration"] == 1].min()
        end_prev = cols["end"][cols["iteration"] == 0].max()
        assert start_next < end_prev

    def test_structure_divergence_detected(self):
        base = [
            TaskSpec(name="a", depends=((0, DepMode.INOUT),), flops=100.0),
            TaskSpec(name="b", depends=((0, DepMode.IN),), flops=100.0),
        ]
        diverged = [
            TaskSpec(name="a", depends=((0, DepMode.INOUT),), flops=100.0),
            TaskSpec(name="c", depends=((1, DepMode.IN),), flops=100.0),
        ]
        prog = Program(
            [
                IterationSpec(index=0, tasks=base),
                IterationSpec(index=1, tasks=diverged),
            ],
            persistent_candidate=True,
        )
        rt = TaskRuntime(prog, cfg())
        rt.start()
        with pytest.raises(PersistentStructureError):
            rt.engine.run()

    def test_firstprivate_cost_scales_replay(self):
        """Bigger firstprivate payloads make replay proportionally costlier."""
        def make(fp):
            b = ProgramBuilder("fp", persistent_candidate=True)
            for _ in range(6):
                with b.iteration():
                    for i in range(16):
                        b.task(f"t{i}", inout=[("x", i)], flops=100.0, fp_bytes=fp)
            return b.build()

        r_small = TaskRuntime(make(8), cfg()).run()
        r_big = TaskRuntime(make(4096), cfg()).run()
        assert r_big.discovery_busy > r_small.discovery_busy

    def test_bodies_refresh_per_iteration(self):
        log = []
        specs_by_iter = []
        for it in range(3):
            specs_by_iter.append(
                [TaskSpec(name="t", depends=((0, DepMode.INOUT),),
                          body=(lambda it=it: log.append(it)))]
            )
        prog = Program(
            [IterationSpec(index=k, tasks=specs_by_iter[k]) for k in range(3)],
            persistent_candidate=True,
        )
        TaskRuntime(prog, cfg(execute_bodies=True)).run()
        assert log == [0, 1, 2]

    def test_inter_iteration_edges_dropped(self):
        """The resolver reset at the barrier removes inter-iteration edges:
        a persistent run's materialized edge count equals one iteration."""
        prog = iterative_program(6, 4)
        r_p = TaskRuntime(prog, cfg()).run()
        prog1 = iterative_program(1, 4)
        r_1 = TaskRuntime(prog1, cfg(opts=OptimizationSet.parse("abc"), non_overlapped=True)).run()
        assert r_p.edges.created == r_1.edges.created
