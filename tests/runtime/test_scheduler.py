"""Unit tests for the ready-task schedulers."""

import pytest

from repro.core.task import Task
from repro.runtime.scheduler import (
    FifoBreadthFirstScheduler,
    LifoDepthFirstScheduler,
    make_scheduler,
)


def tasks(n):
    return [Task(i) for i in range(n)]


class TestLifoDepthFirst:
    def test_local_pop_is_lifo(self):
        s = LifoDepthFirstScheduler(2, seed=0)
        a, b, c = tasks(3)
        s.push_local(0, a)
        s.push_local(0, b)
        s.push_local(0, c)
        assert s.pop(0) == (c, "local")
        assert s.pop(0) == (b, "local")
        assert s.pop(0) == (a, "local")

    def test_spawn_queue_is_fifo(self):
        s = LifoDepthFirstScheduler(2, seed=0)
        a, b = tasks(2)
        s.push_spawn(a)
        s.push_spawn(b)
        assert s.pop(0) == (a, "spawn")
        assert s.pop(1) == (b, "spawn")

    def test_own_deque_preferred_over_spawn(self):
        s = LifoDepthFirstScheduler(2, seed=0)
        a, b = tasks(2)
        s.push_spawn(a)
        s.push_local(0, b)
        assert s.pop(0) == (b, "local")

    def test_steal_from_victim_bottom(self):
        s = LifoDepthFirstScheduler(2, seed=0)
        a, b = tasks(2)
        s.push_local(0, a)
        s.push_local(0, b)
        task, src = s.pop(1)
        assert src == "steal"
        assert task is a  # bottom = oldest

    def test_empty_pop(self):
        s = LifoDepthFirstScheduler(2, seed=0)
        assert s.pop(0) == (None, "none")

    def test_n_ready_accounting(self):
        s = LifoDepthFirstScheduler(2, seed=0)
        a, b, c = tasks(3)
        s.push_local(0, a)
        s.push_spawn(b)
        s.push_local(1, c)
        assert s.n_ready == 3
        s.pop(0)
        s.pop(0)
        s.pop(0)
        assert s.n_ready == 0

    def test_stats(self):
        s = LifoDepthFirstScheduler(2, seed=0)
        a, b = tasks(2)
        s.push_local(1, a)
        s.push_spawn(b)
        s.pop(0)  # spawn
        s.pop(0)  # steal
        assert s.stats.pops_spawn == 1
        assert s.stats.steals == 1

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            LifoDepthFirstScheduler(0)


class TestFifoBreadthFirst:
    def test_global_fifo(self):
        s = FifoBreadthFirstScheduler(2)
        a, b, c = tasks(3)
        s.push_local(0, a)
        s.push_spawn(b)
        s.push_local(1, c)
        assert s.pop(0)[0] is a
        assert s.pop(1)[0] is b
        assert s.pop(0)[0] is c

    def test_n_ready(self):
        s = FifoBreadthFirstScheduler(2)
        s.push_spawn(Task(0))
        assert s.n_ready == 1


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_scheduler("lifo-df", 2), LifoDepthFirstScheduler)
        assert isinstance(make_scheduler("fifo-bf", 2), FifoBreadthFirstScheduler)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("magic", 2)
