"""Structural-divergence detection across all three paper applications.

Every app builds its iterations from one shared template list
(``Program.from_template``), so a real run can never diverge; these tests
rebuild the programs with a mutated second iteration — the mesh-refinement
scenario of §3.2 "Applicability" — and check the runtime (a) raises
:class:`PersistentStructureError` at the barrier and (b) drops the
now-stale compiled-graph artifact from an attached cache, so a corrected
program rediscovers and republishes.
"""

import dataclasses

import pytest

from repro.core import CompiledGraphCache, OptimizationSet
from repro.core.persistent import PersistentStructureError
from repro.core.program import IterationSpec, Program
from repro.core.task import DepMode
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime


def lulesh_program():
    from repro.apps.lulesh import LuleshConfig, build_task_program

    return build_task_program(LuleshConfig(s=8, iterations=2, tpl=8))


def hpcg_program():
    from repro.apps.hpcg import HpcgConfig, build_task_program

    return build_task_program(HpcgConfig(n_rows=1024, iterations=2, tpl=8))


def cholesky_program():
    from repro.apps.cholesky import CholeskyConfig, build_task_programs

    return build_task_programs(CholeskyConfig(n=1024, b=256, iterations=2))[0]


APP_BUILDERS = {
    "lulesh": lulesh_program,
    "hpcg": hpcg_program,
    "cholesky": cholesky_program,
}


def cfg():
    return RuntimeConfig(
        machine=tiny_test_machine(4), opts=OptimizationSet.parse("abcp")
    )


def diverge(program) -> Program:
    """Second iteration with one task's dependences rewired (fresh addr)."""
    template = program.iterations[0].tasks
    bad = list(template)
    for i, spec in enumerate(bad):
        if not spec.barrier and spec.depends:
            bad[i] = dataclasses.replace(
                spec, depends=((10**9, DepMode.INOUT),)
            )
            break
    else:  # pragma: no cover - every app has dependent tasks
        raise AssertionError("no dependent task to mutate")
    return Program(
        [
            IterationSpec(index=0, tasks=template),
            IterationSpec(index=1, tasks=bad),
        ],
        persistent_candidate=True,
        name=f"{program.name}-diverged",
    )


def corrected(program) -> Program:
    """Second iteration content-equal to the template but not the same
    list object — exercises validation (not skipped) that then passes."""
    template = program.iterations[0].tasks
    return Program(
        [
            IterationSpec(index=0, tasks=template),
            IterationSpec(index=1, tasks=list(template)),
        ],
        persistent_candidate=True,
        name=program.name,
    )


class TestDivergenceDetected:
    @pytest.mark.parametrize("app", sorted(APP_BUILDERS))
    def test_divergence_raises(self, app):
        rt = TaskRuntime(diverge(APP_BUILDERS[app]()), cfg())
        rt.start()
        with pytest.raises(PersistentStructureError):
            rt.engine.run()

    @pytest.mark.parametrize("app", sorted(APP_BUILDERS))
    def test_content_equal_copy_validates_and_completes(self, app):
        res = TaskRuntime(corrected(APP_BUILDERS[app]()), cfg()).run()
        assert res.makespan > 0.0


class TestCompiledCacheInvalidation:
    @pytest.mark.parametrize("app", sorted(APP_BUILDERS))
    def test_divergence_invalidates_then_rediscovery_republishes(
        self, app, tmp_path
    ):
        cache = CompiledGraphCache(tmp_path)
        builder = APP_BUILDERS[app]

        # The diverged run publishes its artifact at the first barrier,
        # then detects the divergence and withdraws it.
        rt = TaskRuntime(diverge(builder()), cfg(), compiled_cache=cache)
        rt.start()
        with pytest.raises(PersistentStructureError):
            rt.engine.run()
        assert len(cache) == 0

        # A corrected program rediscovers and stores under its own key.
        res = TaskRuntime(
            corrected(builder()), cfg(), compiled_cache=cache
        ).run()
        assert res.extra["compiled_tdg"]["cache"] == "stored"
        assert len(cache) == 1
        (key,) = cache.keys()
        assert cache.get(key).persistent
