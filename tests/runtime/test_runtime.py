"""Behavioral tests of the task runtime simulator."""

import numpy as np
import pytest

from repro.core import OptimizationSet, ProgramBuilder, ThrottleConfig
from repro.core.program import CommKind, CommSpec, Program
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime


def cfg(**kw):
    kw.setdefault("machine", tiny_test_machine(4))
    return RuntimeConfig(**kw)


def chain_program(n, iterations=1, flops=1000.0):
    b = ProgramBuilder("chain", persistent_candidate=True)
    for _ in range(iterations):
        with b.iteration():
            for i in range(n):
                b.task(f"t{i}", inp=["x"] if i else [], inout=["x"], flops=flops)
    return b.build()


def wide_program(n, flops=10_000.0):
    b = ProgramBuilder("wide")
    with b.iteration():
        for i in range(n):
            b.task(f"t{i}", out=[("y", i)], flops=flops)
    return b.build()


class TestExecutionOrdering:
    def test_chain_executes_in_order(self):
        prog = chain_program(10)
        rc = cfg(trace=True)
        r = TaskRuntime(prog, rc).run()
        cols = r.trace.arrays()
        order = cols["start"][np.argsort(cols["tid"])]
        assert np.all(np.diff(order) > 0)

    def test_edges_respected(self):
        """Every materialized edge orders completion before start."""
        b = ProgramBuilder("diamond")
        with b.iteration():
            b.task("src", out=["x"], flops=500.0)
            for i in range(6):
                b.task(f"mid{i}", inp=["x"], out=[("y", i)], flops=500.0)
            b.task("sink", inp=[("y", i) for i in range(6)], flops=500.0)
        rt = TaskRuntime(b.build(), cfg(trace=True))
        r = rt.run()
        for pred, succ in rt.graph.iter_edges():
            assert pred.completed_at <= succ.started_at + 1e-12

    def test_all_tasks_complete(self):
        prog = wide_program(50)
        r = TaskRuntime(prog, cfg()).run()
        assert r.n_tasks == 50

    def test_empty_program(self):
        prog = Program([], name="empty")
        r = TaskRuntime(prog, cfg()).run()
        assert r.n_tasks == 0
        assert r.makespan == 0.0


class TestParallelism:
    def test_independent_tasks_run_in_parallel(self):
        n_threads = 4
        prog = wide_program(40, flops=100_000.0)
        r = TaskRuntime(prog, cfg(n_threads=n_threads)).run()
        # Sequential work time is ~40 * 100us = 4ms; with 4 threads the
        # makespan must be well under half the serial time.
        serial = r.work_total
        assert r.makespan < 0.5 * serial

    def test_chain_has_no_parallelism(self):
        prog = chain_program(20, flops=50_000.0)
        r = TaskRuntime(prog, cfg(n_threads=4)).run()
        assert r.makespan >= r.work_total * 0.95

    def test_single_thread(self):
        prog = wide_program(10)
        r = TaskRuntime(prog, cfg(n_threads=1)).run()
        assert r.n_tasks == 10

    def test_work_conserved_across_thread_counts(self):
        flops_total = []
        for n in (1, 2, 4):
            r = TaskRuntime(wide_program(20, flops=50_000.0), cfg(n_threads=n)).run()
            flops_total.append(r.work_total)
        # Same tasks, same flop time; memory time may differ slightly with
        # contention, so allow 30%.
        assert max(flops_total) < 1.3 * min(flops_total)


class TestAccounting:
    def test_breakdown_identity(self):
        prog = wide_program(30)
        r = TaskRuntime(prog, cfg(n_threads=4)).run()
        per_thread = r.work + r.overhead
        per_thread = per_thread.copy()
        per_thread[0] += r.discovery_busy
        assert np.all(per_thread <= r.makespan + 1e-9)
        assert np.allclose(r.idle, r.makespan - per_thread, atol=1e-12)

    def test_idle_non_negative(self):
        r = TaskRuntime(chain_program(5), cfg(n_threads=4)).run()
        assert np.all(r.idle >= 0)

    def test_discovery_span_within_makespan(self):
        r = TaskRuntime(wide_program(20), cfg()).run()
        a, b = r.discovery_span
        assert 0 <= a <= b <= r.makespan + 1e-12

    def test_tasks_edges_counted(self):
        rt = TaskRuntime(chain_program(10), cfg())
        r = rt.run()
        assert r.n_tasks == 10
        assert r.edges.created <= 9  # chain, possibly pruned

    def test_result_before_finish_raises(self):
        from repro.runtime.runtime import DeadlockError

        rt = TaskRuntime(wide_program(5), cfg())
        rt.start()
        with pytest.raises(DeadlockError):
            rt.result()

    def test_run_twice_rejected(self):
        rt = TaskRuntime(wide_program(5), cfg())
        rt.run()
        with pytest.raises(RuntimeError, match="twice"):
            rt.start()


class TestNonOverlapped:
    """Table 1's complementary experiment: discovery fully precedes execution."""

    def test_execution_starts_after_discovery(self):
        prog = wide_program(20)
        r = TaskRuntime(prog, cfg(non_overlapped=True, trace=True)).run()
        _, disc_end = r.discovery_span
        exec_start, _ = r.execution_span
        assert exec_start >= disc_end - 1e-12

    def test_no_pruning_of_race(self):
        """Non-overlapped discovery sees no completed predecessors."""
        prog = chain_program(20)
        r = TaskRuntime(prog, cfg(non_overlapped=True)).run()
        assert r.edges.pruned == 0
        assert r.edges.created == 19

    def test_total_exceeds_overlapped(self):
        prog = chain_program(30, flops=20_000.0)
        r_norm = TaskRuntime(prog, cfg()).run()
        r_non = TaskRuntime(prog, cfg(non_overlapped=True)).run()
        assert r_non.makespan >= r_norm.makespan * 0.99

    def test_incompatible_with_persistent(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            cfg(non_overlapped=True, opts=OptimizationSet.parse("p"))


class TestThrottling:
    def test_total_cap_bounds_live_tasks(self):
        prog = wide_program(100, flops=100_000.0)
        rc = cfg(throttle=ThrottleConfig(total_cap=8), n_threads=2)
        rt = TaskRuntime(prog, rc)
        live_high_water = 0
        orig = rt._task_armed

        def spy(*a, **k):
            nonlocal live_high_water
            orig(*a, **k)
            live_high_water = max(live_high_water, rt._alive)

        rt._task_armed = spy
        rt.start()
        rt.engine.run()
        r = rt.result()
        assert r.n_tasks == 100
        assert live_high_water <= 9  # cap + the one being created

    def test_producer_consumes_when_throttled(self):
        prog = wide_program(50, flops=100_000.0)
        rc = cfg(throttle=ThrottleConfig(total_cap=4), n_threads=2, trace=True)
        r = TaskRuntime(prog, rc).run()
        # Thread 0 (producer) must have executed some tasks.
        workers = r.trace.arrays()["worker"]
        assert (workers == 0).any()

    def test_disabled_throttle_runs(self):
        prog = wide_program(50)
        rc = cfg(throttle=ThrottleConfig.disabled())
        assert TaskRuntime(prog, rc).run().n_tasks == 50


class TestDetachedComm:
    def test_allreduce_task_completes(self):
        b = ProgramBuilder("coll")
        with b.iteration():
            b.task("red", out=["dt"], flops=100.0,
                   comm=CommSpec(CommKind.IALLREDUCE, nbytes=8))
            b.task("work", inp=["dt"], flops=100.0)
        r = TaskRuntime(b.build(), cfg()).run()
        assert r.n_tasks == 2
        assert len(r.comm) == 1
        assert r.comm[0].kind == "iallreduce"
        assert r.comm[0].complete_time >= r.comm[0].post_time

    def test_successor_waits_for_detach(self):
        b = ProgramBuilder("coll")
        with b.iteration():
            b.task("red", out=["dt"], comm=CommSpec(CommKind.IALLREDUCE, nbytes=8))
            b.task("work", inp=["dt"], flops=100.0)
        rt = TaskRuntime(b.build(), cfg(trace=True))
        r = rt.run()
        red = rt.graph.tasks[0]
        work = rt.graph.tasks[1]
        assert work.started_at >= red.completed_at - 1e-12
        # Detached completion happens strictly after the body returned.
        assert red.completed_at > red.started_at


class TestSchedulerPolicies:
    def test_fifo_and_lifo_both_complete(self):
        prog = chain_program(10, iterations=2)
        for sched in ("lifo-df", "fifo-bf"):
            r = TaskRuntime(prog, cfg(scheduler=sched)).run()
            assert r.n_tasks == 20

    def test_depth_first_improves_locality(self):
        """Successor-on-same-worker reuse: LIFO-DF must generate fewer
        DRAM bytes than FIFO-BF on a producer-consumer loop nest."""
        b = ProgramBuilder("locality")
        with b.iteration():
            for loop in range(8):
                for i in range(16):
                    b.task(
                        f"L{loop}[{i}]",
                        inp=[("v", loop - 1, i)] if loop else [],
                        out=[("v", loop, i)],
                        flops=2000.0,
                        footprint=((i, 4096),),
                    )
        prog = b.build()
        dram = {}
        for sched in ("lifo-df", "fifo-bf"):
            r = TaskRuntime(prog, cfg(scheduler=sched, n_threads=4)).run()
            dram[sched] = r.mem.bytes_dram
        assert dram["lifo-df"] <= dram["fifo-bf"]


class TestStubs:
    def test_redirect_stub_not_counted_as_task(self):
        b = ProgramBuilder("ioset")
        with b.iteration():
            for i in range(4):
                b.task(f"X{i}", inoutset=["x"], flops=100.0)
            for j in range(4):
                b.task(f"Y{j}", inp=["x"], flops=100.0)
        rc = cfg(opts=OptimizationSet.parse("c"), non_overlapped=True)
        r = TaskRuntime(b.build(), rc).run()
        assert r.n_tasks == 8
        assert r.edges.redirect_nodes == 1
