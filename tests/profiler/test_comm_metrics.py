"""Unit tests for §4.1 communication metrics."""

import numpy as np
import pytest

from repro.profiler.comm_metrics import CommMetrics, _Coverage, comm_metrics
from repro.profiler.trace import CommRecord, TaskTrace


def trace_with(intervals_by_worker):
    t = TaskTrace()
    tid = 0
    for w, ivs in enumerate(intervals_by_worker):
        for a, b in ivs:
            t.record(tid, f"t{tid}", 0, 0, w, a, b)
            tid += 1
    return t


class TestCoverage:
    def test_simple(self):
        cov = _Coverage(np.array([[0.0, 1.0], [2.0, 3.0]]))
        assert cov(0.5) == pytest.approx(0.5)
        assert cov(1.5) == pytest.approx(1.0)
        assert cov(2.5) == pytest.approx(1.5)
        assert cov(10.0) == pytest.approx(2.0)

    def test_overlap_window(self):
        cov = _Coverage(np.array([[0.0, 2.0], [3.0, 5.0]]))
        assert cov.overlap(1.0, 4.0) == pytest.approx(2.0)
        assert cov.overlap(4.0, 1.0) == 0.0

    def test_empty(self):
        cov = _Coverage(np.empty((0, 2)))
        assert cov(100.0) == 0.0


class TestCommMetrics:
    def test_full_overlap(self):
        trace = trace_with([[(0.0, 10.0)], [(0.0, 10.0)]])
        recs = [CommRecord("isend", 0, 1, 100, 2.0, 4.0)]
        m = comm_metrics(recs, trace, n_threads=2)
        assert m.comm_time == pytest.approx(2.0)
        assert m.overlapped_work == pytest.approx(4.0)
        assert m.overlap_ratio == pytest.approx(1.0)

    def test_zero_overlap(self):
        trace = trace_with([[(10.0, 20.0)], []])
        recs = [CommRecord("isend", 0, 1, 100, 0.0, 5.0)]
        m = comm_metrics(recs, trace, n_threads=2)
        assert m.overlap_ratio == 0.0

    def test_recv_requests_ignored(self):
        trace = trace_with([[(0.0, 10.0)]])
        recs = [
            CommRecord("irecv", 0, 1, 100, 0.0, 5.0),
            CommRecord("isend", 0, 1, 100, 0.0, 5.0),
        ]
        m = comm_metrics(recs, trace, n_threads=1)
        assert m.n_requests == 1

    def test_collective_vs_p2p_split(self):
        trace = trace_with([[(0.0, 10.0)]])
        recs = [
            CommRecord("iallreduce", 0, -1, 8, 0.0, 4.0),
            CommRecord("isend", 0, 1, 100, 0.0, 1.0),
        ]
        m = comm_metrics(recs, trace, n_threads=1)
        assert m.collective_time == pytest.approx(4.0)
        assert m.p2p_send_time == pytest.approx(1.0)

    def test_incomplete_requests_skipped(self):
        trace = trace_with([[(0.0, 1.0)]])
        recs = [CommRecord("isend", 0, 1, 100, 0.0, float("nan"))]
        m = comm_metrics(recs, trace, n_threads=1)
        assert m.n_requests == 0
        assert m.comm_time == 0.0

    def test_ratio_clamped_to_one(self):
        trace = trace_with([[(0.0, 100.0)], [(0.0, 100.0)], [(0.0, 100.0)]])
        recs = [CommRecord("isend", 0, 1, 8, 1.0, 1.001)]
        m = comm_metrics(recs, trace, n_threads=3)
        assert m.overlap_ratio <= 1.0

    def test_bad_threads_rejected(self):
        with pytest.raises(ValueError):
            comm_metrics([], TaskTrace(), 0)

    def test_str_smoke(self):
        trace = trace_with([[(0.0, 1.0)]])
        m = comm_metrics([], trace, 1)
        assert "ratio" in str(m)
