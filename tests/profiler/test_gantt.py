"""Unit tests for the ASCII Gantt chart."""


from repro.profiler.gantt import gantt_of
from repro.profiler.trace import TaskTrace


def trace_of(records):
    t = TaskTrace()
    for tid, (worker, iteration, start, end) in enumerate(records):
        t.record(tid, f"t{tid}", 0, iteration, worker, start, end)
    return t


class TestGantt:
    def test_grid_shape(self):
        t = trace_of([(0, 0, 0.0, 1.0), (1, 0, 0.0, 1.0)])
        g = gantt_of(t, 2, width=10)
        assert g.grid.shape == (2, 10)

    def test_idle_is_minus_one(self):
        t = trace_of([(0, 0, 0.0, 0.5)])
        g = gantt_of(t, 2, width=10)
        assert (g.grid[1] == -1).all()
        assert (g.grid[0][:5] == 0).all()

    def test_iteration_glyphs(self):
        t = trace_of([(0, 0, 0.0, 1.0), (0, 1, 1.0, 2.0)])
        g = gantt_of(t, 1, width=10)
        assert (g.grid[0][:5] == 0).all()
        assert (g.grid[0][5:] == 1).all()

    def test_interleaving_detection(self):
        barrier = trace_of([(0, 0, 0.0, 1.0), (1, 0, 0.0, 1.0),
                            (0, 1, 1.0, 2.0), (1, 1, 1.0, 2.0)])
        g = gantt_of(barrier, 2, width=8)
        assert not g.iterations_interleaved()
        pipelined = trace_of([(0, 0, 0.0, 2.0), (1, 1, 1.0, 2.0)])
        g2 = gantt_of(pipelined, 2, width=8)
        assert g2.iterations_interleaved()

    def test_iteration_span(self):
        t = trace_of([(0, 0, 0.0, 1.0), (0, 1, 1.0, 2.0)])
        g = gantt_of(t, 1, width=10)
        lo, hi = g.iteration_span(1)
        assert lo >= 0.9 and hi <= 2.01

    def test_window_selection(self):
        t = trace_of([(0, 0, 0.0, 1.0), (0, 5, 5.0, 6.0)])
        g = gantt_of(t, 1, width=10, t0=4.5, t1=6.5)
        assert 5 in set(g.grid[0])
        assert 0 not in set(g.grid[0])

    def test_render_smoke(self):
        t = trace_of([(0, 0, 0.0, 1.0), (1, 1, 0.5, 1.5)])
        out = gantt_of(t, 2, width=20).render()
        assert "thr  0" in out
        assert "span" in out

    def test_empty_trace(self):
        g = gantt_of(TaskTrace(), 2, width=10)
        assert (g.grid == -1).all()
