"""In-flight MPI requests (NaN completion) across serde, metrics, exporters.

A request still posted when the trace is cut carries ``complete_time =
NaN``.  That NaN must survive a serde round-trip (via the sentinel
encoding), be skipped by the §4.1 overlap metrics, and never leak an
unparseable ``NaN`` token into the strict-JSON observability exporters.
"""

import json
import math

import pytest

from repro.obs import TraceRecorder, iter_ndjson, to_perfetto, validate_perfetto
from repro.profiler.comm_metrics import comm_metrics
from repro.profiler.trace import CommRecord, TaskTrace
from repro.util.serde import canonical_json


def in_flight(kind="isend", post=1.5):
    return CommRecord(kind, 0, 1, 2048, post, float("nan"), iteration=2)


class TestSerdeRoundTrip:
    def test_nan_complete_survives(self):
        rec = in_flight()
        clone = CommRecord.from_dict(rec.to_dict())
        assert math.isnan(clone.complete_time)
        assert clone.post_time == rec.post_time
        assert (clone.kind, clone.rank, clone.peer, clone.nbytes,
                clone.iteration) == ("isend", 0, 1, 2048, 2)

    def test_dict_is_strict_json(self):
        # The sentinel encoding (the *string* "NaN", not the bare token)
        # keeps the dict serializable with allow_nan=False and parseable
        # by a strict reader that rejects non-finite constants.
        text = canonical_json(in_flight().to_dict())
        strict = json.loads(
            text,
            parse_constant=lambda s: pytest.fail(f"bare {s} token in JSON"),
        )
        clone = CommRecord.from_dict(strict)
        assert math.isnan(clone.complete_time)

    def test_completed_record_unchanged(self):
        rec = CommRecord("irecv", 1, 0, 512, 0.25, 0.75)
        clone = CommRecord.from_dict(json.loads(canonical_json(rec.to_dict())))
        assert clone.complete_time == 0.75
        assert clone.duration == pytest.approx(0.5)


class TestMetricsSkipInFlight:
    def test_in_flight_not_counted(self):
        trace = TaskTrace()
        trace.record(0, "t", 0, 0, 0, 0.0, 10.0)
        m = comm_metrics([in_flight(), CommRecord("isend", 0, 1, 64, 1.0, 2.0)],
                         trace, n_threads=1)
        assert m.n_requests == 1
        assert m.comm_time == pytest.approx(1.0)


class TestExportersStayStrict:
    def recorder_with(self, *records):
        rec = TraceRecorder()
        rec.comm_records.extend(records)
        return rec

    def test_perfetto_in_flight_instant(self):
        doc = to_perfetto(self.recorder_with(in_flight()))
        validate_perfetto(doc)
        (ev,) = [e for e in doc["traceEvents"] if e.get("cat") == "mpi"]
        assert ev["ph"] == "i"
        assert ev["args"]["iteration"] == 2

    def test_ndjson_in_flight_null(self):
        lines = list(iter_ndjson(self.recorder_with(in_flight())))
        comm = json.loads(lines[-1])
        assert comm["complete"] is None
        assert comm["post"] == 1.5
        for line in lines:
            assert "NaN" not in line

    def test_mixed_records(self):
        rec = self.recorder_with(
            in_flight(), CommRecord("isend", 0, 1, 64, 1.0, 2.0)
        )
        doc = validate_perfetto(to_perfetto(rec))
        phases = sorted(
            e["ph"] for e in doc["traceEvents"] if e.get("cat") == "mpi"
        )
        assert phases == ["X", "i"]
