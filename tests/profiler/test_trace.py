"""Unit tests for trace recording."""

import numpy as np

from repro.profiler.trace import CommRecord, TaskTrace


class TestTaskTrace:
    def test_record_and_arrays(self):
        t = TaskTrace()
        t.record(0, "a", 1, 0, 2, 0.0, 1.0)
        t.record(1, "b", 1, 0, 3, 1.0, 2.0)
        cols = t.arrays()
        assert list(cols["tid"]) == [0, 1]
        assert list(cols["worker"]) == [2, 3]
        assert t.names() == ["a", "b"]
        assert len(t) == 2

    def test_disabled_records_nothing(self):
        t = TaskTrace(enabled=False)
        t.record(0, "a", 1, 0, 2, 0.0, 1.0)
        assert len(t) == 0

    def test_work_intervals_sorted_per_worker(self):
        t = TaskTrace()
        t.record(0, "a", 0, 0, 0, 5.0, 6.0)
        t.record(1, "b", 0, 0, 0, 1.0, 2.0)
        t.record(2, "c", 0, 0, 1, 3.0, 4.0)
        ivs = t.work_intervals_by_worker(2)
        assert np.allclose(ivs[0], [[1.0, 2.0], [5.0, 6.0]])
        assert np.allclose(ivs[1], [[3.0, 4.0]])

    def test_empty_arrays(self):
        t = TaskTrace()
        cols = t.arrays()
        assert len(cols["start"]) == 0


class TestCommRecord:
    def test_duration(self):
        r = CommRecord("isend", 0, 1, 100, 2.0, 5.0)
        assert r.duration == 3.0
