"""Tests for per-loop aggregation and text reports."""

import pytest

from repro.core import ProgramBuilder
from repro.memory import tiny_test_machine
from repro.profiler.report import iteration_spans, loop_profiles, text_report
from repro.runtime import RuntimeConfig, TaskRuntime


@pytest.fixture()
def traced_result():
    b = ProgramBuilder("p", persistent_candidate=True)
    for _ in range(3):
        with b.iteration():
            for i in range(4):
                b.task(f"alpha[{i}]", inout=[("a", i)], flops=20_000.0, loop="alpha")
            for i in range(4):
                b.task(f"beta[{i}]", inp=[("a", i)], out=[("b", i)],
                       flops=5_000.0, loop="beta")
    return TaskRuntime(
        b.build(), RuntimeConfig(machine=tiny_test_machine(4), trace=True)
    ).run()


class TestLoopProfiles:
    def test_grouping(self, traced_result):
        profiles = loop_profiles(traced_result.trace)
        assert len(profiles) == 2
        by_name = {p.name: p for p in profiles}
        assert by_name["alpha"].n_tasks == 12
        assert by_name["beta"].n_tasks == 12

    def test_sorted_by_work(self, traced_result):
        profiles = loop_profiles(traced_result.trace)
        assert profiles[0].work_total >= profiles[1].work_total
        assert profiles[0].name == "alpha"  # 4x the flops

    def test_grain_bounds(self, traced_result):
        for p in loop_profiles(traced_result.trace):
            assert p.grain_min <= p.grain_mean <= p.grain_max
            assert p.span >= p.grain_max

    def test_explicit_names(self, traced_result):
        profiles = loop_profiles(traced_result.trace, names={0: "ALPHA"})
        assert any(p.name == "ALPHA" for p in profiles)

    def test_empty_trace(self):
        from repro.profiler.trace import TaskTrace

        assert loop_profiles(TaskTrace()) == []


class TestIterationSpans:
    def test_ordered_and_complete(self, traced_result):
        spans = iteration_spans(traced_result.trace)
        assert [it for it, _, _ in spans] == [0, 1, 2]
        for _, a, b in spans:
            assert a < b


class TestTextReport:
    def test_contains_sections(self, traced_result):
        rep = text_report(traced_result)
        assert "run report" in rep
        assert "edges:" in rep
        assert "memory:" in rep
        assert "alpha" in rep
        assert "iterations: 3" in rep

    def test_untraced_run_degrades(self):
        b = ProgramBuilder("p")
        with b.iteration():
            b.task("t", flops=100.0)
        r = TaskRuntime(
            b.build(), RuntimeConfig(machine=tiny_test_machine(2))
        ).run()
        assert "no task trace" in text_report(r)
