"""Unit tests for the §2.3.1 time breakdown."""

import pytest

from repro.core import ProgramBuilder
from repro.memory import tiny_test_machine
from repro.profiler.breakdown import breakdown_of
from repro.runtime import RuntimeConfig, TaskRuntime


def run(n_tasks=20, n_threads=4):
    b = ProgramBuilder("p")
    with b.iteration():
        for i in range(n_tasks):
            b.task(f"t{i}", out=[("y", i)], flops=10_000.0)
    return TaskRuntime(
        b.build(), RuntimeConfig(machine=tiny_test_machine(n_threads))
    ).run()


class TestBreakdown:
    def test_accounting_identity(self):
        r = run()
        bd = breakdown_of(r)
        assert bd.accounted_avg == pytest.approx(bd.makespan, rel=1e-6)

    def test_components_non_negative(self):
        bd = breakdown_of(run())
        assert bd.work_avg >= 0
        assert bd.idle_avg >= 0
        assert bd.overhead_avg >= 0
        assert bd.discovery >= 0

    def test_totals_scale_with_threads(self):
        bd = breakdown_of(run(n_threads=4))
        assert bd.work_total == pytest.approx(bd.work_avg * 4)

    def test_row_keys(self):
        row = breakdown_of(run()).row()
        assert set(row) == {"makespan", "work", "idle", "overhead", "discovery"}

    def test_str_smoke(self):
        assert "work=" in str(breakdown_of(run()))
