"""Round-trip tests for trace serialization."""

import numpy as np

from repro.profiler.trace import TaskTrace


def sample_trace():
    t = TaskTrace()
    t.record(0, "a[0]", 1, 0, 2, 0.0, 1.5)
    t.record(1, "b[0]", 2, 1, 3, 1.5, 2.25)
    return t


class TestJsonLines:
    def test_round_trip(self):
        t = sample_trace()
        t2 = TaskTrace.from_json_lines(t.to_json_lines())
        a, b = t.arrays(), t2.arrays()
        for k in a:
            assert np.array_equal(a[k], b[k]), k
        assert t.names() == t2.names()

    def test_one_line_per_record(self):
        assert len(sample_trace().to_json_lines().splitlines()) == 2

    def test_empty_trace(self):
        assert TaskTrace().to_json_lines() == ""
        assert len(TaskTrace.from_json_lines("")) == 0

    def test_blank_lines_ignored(self):
        t = TaskTrace.from_json_lines("\n" + sample_trace().to_json_lines() + "\n\n")
        assert len(t) == 2

    def test_runtime_trace_exports(self):
        from repro.core import ProgramBuilder
        from repro.memory import tiny_test_machine
        from repro.runtime import RuntimeConfig, TaskRuntime

        b = ProgramBuilder("p")
        with b.iteration():
            for i in range(5):
                b.task(f"t{i}", out=[("y", i)], flops=1000.0)
        r = TaskRuntime(
            b.build(), RuntimeConfig(machine=tiny_test_machine(2), trace=True)
        ).run()
        text = r.trace.to_json_lines()
        assert len(text.splitlines()) == 5
        assert '"worker"' in text
