"""Exporter tests: Perfetto/Chrome trace JSON and NDJSON (repro.obs.export)."""

import json

import pytest

from repro.core import ProgramBuilder
from repro.memory import tiny_test_machine
from repro.obs import (
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    iter_ndjson,
    to_perfetto,
    validate_perfetto,
    write_ndjson,
    write_perfetto,
)
from repro.profiler.trace import CommRecord
from repro.runtime import RuntimeConfig, TaskRuntime
from repro.sim import InstrumentationBus


def small_program():
    b = ProgramBuilder("exp")
    for _ in range(2):
        with b.iteration():
            b.task("src", out=["x"], flops=200.0)
            b.task("left", inp=["x"], flops=100.0)
            b.task("right", inp=["x"], flops=150.0)
            b.taskwait()
    return b.build()


@pytest.fixture()
def recorder():
    bus = InstrumentationBus()
    rec = bus.attach(TraceRecorder())
    TaskRuntime(
        small_program(),
        RuntimeConfig(machine=tiny_test_machine(2), seed=1),
        bus=bus,
    ).run()
    return rec


class TestPerfetto:
    def test_valid_document(self, recorder):
        doc = validate_perfetto(to_perfetto(recorder))
        assert doc["otherData"]["version"] == TRACE_SCHEMA_VERSION
        phases = {ev["ph"] for ev in doc["traceEvents"]}
        assert "M" in phases and "X" in phases

    def test_one_span_per_task_end(self, recorder):
        doc = to_perfetto(recorder)
        spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert len(spans) == recorder.n_spans == 6
        names = {ev["name"] for ev in spans}
        assert names == {"src", "left", "right"}

    def test_flow_events_along_edges(self, recorder):
        # src is tid 0/3, left tid 1/4 per iteration: one flow per iteration.
        doc = to_perfetto(recorder, edges=[(0, 1)])
        starts = [ev for ev in doc["traceEvents"] if ev["ph"] == "s"]
        finishes = [ev for ev in doc["traceEvents"] if ev["ph"] == "f"]
        assert len(starts) == len(finishes) >= 1
        assert all(ev["bp"] == "e" for ev in finishes)
        validate_perfetto(doc)

    def test_in_flight_request_becomes_instant(self, recorder):
        recorder.comm_records.append(
            CommRecord("isend", 0, 1, 4096, 0.5, float("nan"))
        )
        doc = validate_perfetto(to_perfetto(recorder))
        instants = [
            ev for ev in doc["traceEvents"]
            if ev["ph"] == "i" and ev.get("cat") == "mpi"
        ]
        assert len(instants) == 1
        assert "in flight" in instants[0]["name"]
        # Strict serialization must not see a NaN token anywhere.
        assert "NaN" not in json.dumps(doc, allow_nan=False)

    def test_completed_request_becomes_span(self, recorder):
        recorder.comm_records.append(CommRecord("isend", 0, 1, 4096, 0.5, 0.9))
        doc = validate_perfetto(to_perfetto(recorder))
        mpi = [
            ev for ev in doc["traceEvents"]
            if ev["ph"] == "X" and ev.get("cat") == "mpi"
        ]
        assert len(mpi) == 1
        assert mpi[0]["dur"] == pytest.approx(0.4e6)

    def test_write_roundtrip(self, recorder, tmp_path):
        path = write_perfetto(tmp_path / "trace.json", to_perfetto(recorder))
        loaded = json.loads(path.read_text())
        validate_perfetto(loaded)


class TestValidateRejections:
    def test_wrong_schema(self):
        with pytest.raises(ValueError, match="not a repro trace"):
            validate_perfetto({"traceEvents": [], "otherData": {}})

    def test_wrong_version(self):
        with pytest.raises(ValueError, match="version"):
            validate_perfetto(
                {"traceEvents": [],
                 "otherData": {"schema": "repro.obs.trace",
                               "version": TRACE_SCHEMA_VERSION + 1}}
            )

    def test_missing_required_field(self, recorder):
        doc = to_perfetto(recorder)
        span = next(ev for ev in doc["traceEvents"] if ev["ph"] == "X")
        del span["ts"]
        with pytest.raises(ValueError, match="missing"):
            validate_perfetto(doc)

    def test_nan_timestamp_rejected(self, recorder):
        doc = to_perfetto(recorder)
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X":
                ev["ts"] = float("nan")
                break
        with pytest.raises(ValueError, match="non-finite"):
            validate_perfetto(doc)

    def test_unknown_phase_rejected(self, recorder):
        doc = to_perfetto(recorder)
        doc["traceEvents"].append({"ph": "Z"})
        with pytest.raises(ValueError, match="unknown phase"):
            validate_perfetto(doc)


class TestNdjson:
    def test_every_line_is_strict_json(self, recorder):
        recorder.comm_records.append(
            CommRecord("irecv", 0, 1, 64, 0.1, float("nan"))
        )
        lines = list(iter_ndjson(recorder))
        assert len(lines) == 1 + recorder.n_spans + len(
            recorder.barrier_kind
        ) + 1
        for line in lines:
            assert "NaN" not in line
            json.loads(line)

    def test_header_carries_schema_and_names(self, recorder):
        header = json.loads(next(iter_ndjson(recorder)))
        assert header["ev"] == "header"
        assert header["schema"] == "repro.obs.trace"
        assert header["version"] == TRACE_SCHEMA_VERSION
        assert set(header["names"]) == {"src", "left", "right"}

    def test_in_flight_complete_is_null(self, recorder):
        recorder.comm_records.append(
            CommRecord("irecv", 0, 1, 64, 0.1, float("nan"))
        )
        comm = [
            json.loads(line) for line in iter_ndjson(recorder)
        ][-1]
        assert comm["ev"] == "comm"
        assert comm["complete"] is None

    def test_write_file(self, recorder, tmp_path):
        path = write_ndjson(tmp_path / "events.ndjson", recorder)
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["ev"] == "header"
        assert all(json.loads(line) for line in lines)
