"""End-to-end tests of the ``repro profile`` CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.obs import check_counters_doc, validate_perfetto

FAST = ["-s", "8", "-i", "2", "--tpl", "8", "--machine", "tiny", "--threads", "2"]


def run_profile(extra, capsys):
    rc = main(["profile", "lulesh", *FAST, *extra])
    return rc, capsys.readouterr().out


class TestProfileReport:
    def test_text_report(self, capsys):
        rc, out = run_profile([], capsys)
        assert rc == 0
        assert "discovery counters" in out
        assert "measured critical path" in out
        assert "time breakdown" in out

    def test_json_summary(self, capsys):
        rc, out = run_profile(["--json"], capsys)
        assert rc == 0
        doc = json.loads(out)
        assert doc["makespan"] > 0.0
        assert doc["critical_path"]["inflation"] >= 1.0
        check_counters_doc(doc["counters"])

    def test_forloop_engine_has_no_tdg(self, capsys):
        rc, out = run_profile(["--engine", "forloop"], capsys)
        assert rc == 0
        assert "critical path: n/a" in out

    def test_opt_b_duplicate_elimination_visible(self, capsys):
        """The acceptance criterion: nonzero dedup with (b) on, zero off."""
        _, out_on = run_profile(["--json", "--opts", "abc"], capsys)
        _, out_off = run_profile(["--json", "--opts", "none"], capsys)
        on = json.loads(out_on)["counters"]["totals"]
        off = json.loads(out_off)["counters"]["totals"]
        assert on["dup_edges_skipped"] > 0
        assert off["dup_edges_skipped"] == 0


class TestProfileArtifacts:
    def test_trace_is_valid_perfetto(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        rc, out = run_profile(["--trace", str(trace)], capsys)
        assert rc == 0 and trace.exists()
        assert f"wrote {trace}" in out
        validate_perfetto(json.loads(trace.read_text()))

    def test_counters_snapshot(self, tmp_path, capsys):
        counters = tmp_path / "counters.json"
        rc, _ = run_profile(["--counters", str(counters)], capsys)
        assert rc == 0
        doc = check_counters_doc(json.loads(counters.read_text()))
        assert doc["totals"]["tasks_created"] > 0

    def test_ndjson_log(self, tmp_path, capsys):
        nd = tmp_path / "events.ndjson"
        rc, _ = run_profile(["--ndjson", str(nd)], capsys)
        assert rc == 0
        lines = nd.read_text().splitlines()
        assert json.loads(lines[0])["ev"] == "header"


class TestProfileDiff:
    def snapshot(self, tmp_path, capsys, name, opts):
        path = tmp_path / name
        rc, _ = run_profile(["--counters", str(path), "--opts", opts], capsys)
        assert rc == 0
        return path

    def test_identical_runs_diff_clean(self, tmp_path, capsys):
        a = self.snapshot(tmp_path, capsys, "a.json", "abc")
        b = self.snapshot(tmp_path, capsys, "b.json", "abc")
        rc = main(["profile", "--diff", str(a), str(b)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "identical" in out

    def test_differing_runs_diff_nonzero(self, tmp_path, capsys):
        a = self.snapshot(tmp_path, capsys, "a.json", "abc")
        b = self.snapshot(tmp_path, capsys, "b.json", "none")
        rc = main(["profile", "--diff", str(a), str(b)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "dup_edges_skipped" in out

    def test_diff_rejects_non_counters_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ValueError, match="not a counters document"):
            main(["profile", "--diff", str(bad), str(bad)])


class TestInfoCatalogue:
    def test_info_lists_bus_hooks(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for hook in ("task_create", "task_replay", "register", "task_end"):
            assert hook in out

    def test_info_json(self, capsys):
        assert main(["info", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "bus_hooks" in doc
        assert "task_create" in doc["bus_hooks"]
        assert "signature" in doc["bus_hooks"]["task_create"]
