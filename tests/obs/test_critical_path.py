"""Measured critical-path tests (repro.obs.critical_path)."""

import pytest

from repro.core import ProgramBuilder
from repro.core.compiled import compile_program
from repro.core.optimizations import OptimizationSet
from repro.memory import tiny_test_machine
from repro.obs import TraceRecorder, measured_critical_path
from repro.obs.critical_path import _longest_path
from repro.runtime import RuntimeConfig, TaskRuntime
from repro.sim import InstrumentationBus


def diamond_program(iterations=2):
    """src -> {mid0, mid1, mid2} -> sink, per iteration."""
    b = ProgramBuilder("cp", persistent_candidate=True)
    for _ in range(iterations):
        with b.iteration():
            b.task("src", out=["x"], flops=400.0)
            for i in range(3):
                # Footprints add memory-hierarchy time, keeping the
                # measured durations strictly above the static weights.
                b.task(f"mid{i}", inp=["x"], out=[("y", i)],
                       flops=200.0 + 100.0 * i,
                       footprint=[(i, 4096)])
            b.task("sink", inp=[("y", i) for i in range(3)], flops=300.0)
            b.taskwait()
    return b.build()


def profile(opts):
    machine = tiny_test_machine(4)
    cfg = RuntimeConfig(machine=machine, opts=opts, seed=5)
    bus = InstrumentationBus()
    recorder = bus.attach(TraceRecorder())
    prog = diamond_program()
    TaskRuntime(prog, cfg, bus=bus).run()
    compiled = compile_program(prog, opts, owner=0)
    cp = measured_critical_path(
        compiled, recorder, flops_per_core=machine.flops_per_core
    )
    return compiled, cp


class TestLongestPath:
    def test_chain(self):
        # 0 -> 1 -> 2 with durations 1, 2, 3.
        length, finish, tail, path = _longest_path(
            [0, 1, 2, 2], [1, 2], [1.0, 2.0, 3.0]
        )
        assert length == pytest.approx(6.0)
        assert path == [0, 1, 2]
        assert finish == pytest.approx([1.0, 3.0, 6.0])
        assert tail == pytest.approx([6.0, 5.0, 3.0])

    def test_diamond_picks_heavier_branch(self):
        # 0 -> {1, 2} -> 3; branch 2 is heavier.
        length, _, _, path = _longest_path(
            [0, 2, 3, 4, 4], [1, 2, 3, 3], [1.0, 1.0, 5.0, 1.0]
        )
        assert length == pytest.approx(7.0)
        assert path == [0, 2, 3]

    def test_empty_graph(self):
        assert _longest_path([0], [], []) == (0.0, [], [], [])

    def test_cycle_detected(self):
        with pytest.raises(ValueError, match="cycle"):
            _longest_path([0, 1, 2], [1, 0], [1.0, 1.0])


class TestMeasuredCriticalPath:
    def test_measured_at_least_static(self):
        _, cp = profile(OptimizationSet.none())
        assert cp.static_t_inf > 0.0
        assert cp.length >= cp.static_t_inf * (1.0 - 1e-9)
        assert cp.inflation >= 1.0 - 1e-9
        cp.check()  # structural invariants hold

    def test_slack_consistency(self):
        _, cp = profile(OptimizationSet.none())
        for it in cp.iterations:
            eps = 1e-9 * max(1.0, it.length)
            for s, th in zip(it.slack, it.through):
                assert s >= -eps
                assert th + s == pytest.approx(it.length)
            for t in it.path:
                assert it.slack[t] == pytest.approx(0.0, abs=eps)

    def test_path_follows_edges(self):
        compiled, cp = profile(OptimizationSet.none())
        for pred, succ in cp.path_edges():
            lo, hi = compiled.succ_offsets[pred], compiled.succ_offsets[pred + 1]
            assert succ in compiled.succ_targets[lo:hi]

    def test_persistent_iterations_sum(self):
        compiled, cp = profile(OptimizationSet.parse("p"))
        assert compiled.persistent and cp.persistent
        assert len(cp.iterations) == 2  # one measured pass per iteration
        assert cp.length == pytest.approx(
            sum(it.length for it in cp.iterations)
        )
        cp.check()

    def test_by_name_owns_path_seconds(self):
        _, cp = profile(OptimizationSet.none())
        assert cp.by_name
        total = sum(secs for _, secs in cp.by_name)
        assert total == pytest.approx(cp.length)
        # Descending by seconds.
        secs = [s for _, s in cp.by_name]
        assert secs == sorted(secs, reverse=True)

    def test_check_rejects_tampering(self):
        _, cp = profile(OptimizationSet.none())
        cp.static_t_inf = cp.length * 2.0
        with pytest.raises(ValueError, match="critical path"):
            cp.check()

    def test_check_rejects_negative_slack(self):
        _, cp = profile(OptimizationSet.none())
        cp.iterations[0].slack[0] = -1.0
        with pytest.raises(ValueError, match="slack"):
            cp.check()

    def test_to_dict_roundtrips_json(self):
        import json

        _, cp = profile(OptimizationSet.none())
        doc = json.loads(json.dumps(cp.to_dict(), allow_nan=False))
        assert doc["inflation"] >= 1.0 - 1e-9
        assert doc["n_tasks"] == 10  # 2 iterations x 5 tasks
