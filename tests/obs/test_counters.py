"""Unit tests for the discovery-phase counters (repro.obs.counters)."""

import pytest

from repro.core import ProgramBuilder
from repro.core.optimizations import OptimizationSet
from repro.memory import tiny_test_machine
from repro.obs import (
    COUNTERS_SCHEMA_VERSION,
    DiscoveryCounters,
    check_counters_doc,
    diff_counters,
)
from repro.runtime import RuntimeConfig, TaskRuntime
from repro.sim import InstrumentationBus


def cfg(**kw):
    kw.setdefault("machine", tiny_test_machine(4))
    kw.setdefault("seed", 3)
    return RuntimeConfig(**kw)


def dup_heavy_program(iterations=2):
    """Every reader pulls two addresses off the same writer: the second
    resolved address is always a duplicate edge (opt b's target)."""
    b = ProgramBuilder("dups")
    for _ in range(iterations):
        with b.iteration():
            b.task("w", out=["x", "y"], flops=100.0)
            for i in range(4):
                b.task(f"r{i}", inp=["x", "y"], flops=50.0)
            b.taskwait()
    return b.build()


def redirect_program():
    """An inoutset group closed by a writer: opt (c) inserts a redirect
    stub between the m group members and whatever follows (Fig. 4)."""
    b = ProgramBuilder("redirect")
    with b.iteration():
        b.task("w0", out=["x"], flops=100.0)
        for i in range(6):
            b.task(f"g{i}", inoutset=["x"], flops=50.0)
        b.task("w1", inout=["x"], flops=100.0)
        b.task("r", inp=["x"], flops=50.0)
        b.taskwait()
    return b.build()


def persistent_program(iterations=3):
    b = ProgramBuilder("persist", persistent_candidate=True)
    for _ in range(iterations):
        with b.iteration():
            b.task("a", out=["x"], flops=100.0, fp_bytes=128)
            b.task("b", inp=["x"], flops=100.0, fp_bytes=128)
            b.taskwait()
    return b.build()


def run_counted(prog, opts):
    bus = InstrumentationBus()
    counters = bus.attach(DiscoveryCounters())
    TaskRuntime(prog, cfg(opts=opts), bus=bus).run()
    return counters


class TestDuplicateEdgeCounters:
    def test_opt_b_on_skips_duplicates(self):
        tot = run_counted(dup_heavy_program(), OptimizationSet.parse("b")).totals()
        assert tot.dup_edges_skipped > 0
        assert tot.dup_edges_created == 0

    def test_opt_b_off_materializes_duplicates(self):
        tot = run_counted(dup_heavy_program(), OptimizationSet.none()).totals()
        assert tot.dup_edges_skipped == 0
        assert tot.dup_edges_created > 0

    def test_on_off_counts_mirror(self):
        """The same accesses either dedup or materialize — the counts match."""
        on = run_counted(dup_heavy_program(), OptimizationSet.parse("b")).totals()
        off = run_counted(dup_heavy_program(), OptimizationSet.none()).totals()
        assert on.dup_edges_skipped == off.dup_edges_created
        assert on.tasks_created == off.tasks_created
        assert on.addrs_resolved == off.addrs_resolved


class TestRedirectCounters:
    def test_opt_c_inserts_stubs(self):
        counters = run_counted(redirect_program(), OptimizationSet.parse("c"))
        assert counters.totals().redirect_nodes >= 1
        assert counters.redirect_edges_saved() >= 0

    def test_opt_c_off_no_stubs(self):
        counters = run_counted(redirect_program(), OptimizationSet.none())
        assert counters.totals().redirect_nodes == 0
        assert counters.redirect_edges_saved() == 0


class TestReplayCounters:
    def test_persistent_replay_stamps_and_fp_bytes(self):
        counters = run_counted(persistent_program(3), OptimizationSet.parse("p"))
        tot = counters.totals()
        # Iterations 1.. replay the 2-task template instead of resolving.
        assert tot.replay_stamps == 2 * 2
        assert tot.fp_copy_bytes == tot.replay_stamps * 128
        assert tot.tasks_created == 2  # only the template is resolved

    def test_non_persistent_has_no_stamps(self):
        tot = run_counted(persistent_program(3), OptimizationSet.none()).totals()
        assert tot.replay_stamps == 0
        assert tot.fp_copy_bytes == 0
        assert tot.tasks_created == 2 * 3


class TestSnapshotDocument:
    def snapshot(self):
        return run_counted(dup_heavy_program(), OptimizationSet.parse("b")).to_dict()

    def test_schema_stamp(self):
        doc = self.snapshot()
        assert doc["schema"] == "repro.obs.counters"
        assert doc["version"] == COUNTERS_SCHEMA_VERSION
        assert check_counters_doc(doc) is doc

    def test_totals_equal_row_sums(self):
        doc = self.snapshot()
        for key, total in doc["totals"].items():
            if key == "redirect_edges_saved":
                continue
            assert total == pytest.approx(
                sum(row[key] for row in doc["per_iteration"])
            )

    def test_per_iteration_rows_keyed(self):
        doc = self.snapshot()
        assert [(r["rank"], r["iteration"]) for r in doc["per_iteration"]] == [
            (0, 0), (0, 1)
        ]

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="not a counters document"):
            check_counters_doc({"schema": "bogus"})

    def test_rejects_wrong_version(self):
        doc = self.snapshot()
        doc["version"] = COUNTERS_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            check_counters_doc(doc)

    def test_rejects_missing_totals(self):
        with pytest.raises(ValueError, match="totals"):
            check_counters_doc(
                {"schema": "repro.obs.counters",
                 "version": COUNTERS_SCHEMA_VERSION,
                 "per_iteration": []}
            )


class TestDiff:
    def test_identical_snapshots_empty_diff(self):
        a = run_counted(dup_heavy_program(), OptimizationSet.parse("b")).to_dict()
        b = run_counted(dup_heavy_program(), OptimizationSet.parse("b")).to_dict()
        assert diff_counters(a, b) == {}

    def test_differing_opts_reported(self):
        a = run_counted(dup_heavy_program(), OptimizationSet.parse("b")).to_dict()
        b = run_counted(dup_heavy_program(), OptimizationSet.none()).to_dict()
        delta = diff_counters(a, b)
        assert "dup_edges_skipped" in delta
        d = delta["dup_edges_skipped"]
        assert d["b"] - d["a"] == d["delta"]
        assert d["a"] > 0 and d["b"] == 0
