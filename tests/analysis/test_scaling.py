"""Tests for the Table 3 weak/strong scaling model."""

import pytest

from repro.analysis.scaling import (
    dynamic_tpl,
    lulesh_scaling,
    weak_scaling_efficiency,
)


class TestDynamicTpl:
    def test_floor(self):
        assert dynamic_tpl(100, min_tpl=4, nodes_per_task=4096) == 4

    def test_rule(self):
        assert dynamic_tpl(8192 * 10, min_tpl=4, nodes_per_task=4096) == 20


class TestWeakScaling:
    def test_weak_rows(self):
        pts = lulesh_scaling([1, 8, 27], mode="weak", s_weak=12,
                             sim_iterations=2, report_iterations=8, fixed_tpl=8)
        assert [p.n_ranks for p in pts] == [1, 8, 27]
        assert all(p.s_local == 12 for p in pts)
        assert all(p.time_task > 0 and p.time_for > 0 for p in pts)

    def test_weak_efficiency_high(self):
        """Weak scaling stays near-flat (paper: >95% efficiency)."""
        pts = lulesh_scaling([1, 8, 64], mode="weak", s_weak=12,
                             sim_iterations=2, report_iterations=8, fixed_tpl=8)
        eff = weak_scaling_efficiency(pts)
        assert all(e > 0.9 for e in eff)

    def test_task_beats_for_weak(self):
        """Paper Table 3: task-based faster than parallel-for weak-scaled.

        Needs a mesh whose field groups exceed the scaled L3 so the
        fork-join version has no inter-loop reuse (the paper's regime).
        """
        pts = lulesh_scaling([8], mode="weak", s_weak=40,
                             sim_iterations=2, report_iterations=8, fixed_tpl=96)
        assert pts[0].time_task < pts[0].time_for


class TestStrongScaling:
    def test_local_size_shrinks(self):
        pts = lulesh_scaling([1, 8, 64], mode="strong", s_strong_global=48,
                             sim_iterations=2, report_iterations=8)
        assert [p.s_local for p in pts] == [48, 24, 12]

    def test_tpl_follows_rule(self):
        pts = lulesh_scaling([1, 64], mode="strong", s_strong_global=48,
                             sim_iterations=2, report_iterations=8)
        assert pts[0].tpl >= pts[1].tpl

    def test_strong_times_decrease_then_flatten(self):
        pts = lulesh_scaling([1, 8, 64], mode="strong", s_strong_global=48,
                             sim_iterations=2, report_iterations=8)
        assert pts[1].time_task < pts[0].time_task


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError):
            lulesh_scaling([1], mode="diagonal")

    def test_non_cube_ranks(self):
        with pytest.raises(ValueError, match="cube"):
            lulesh_scaling([5], mode="weak", sim_iterations=1, report_iterations=1)

    def test_empty_efficiency(self):
        assert weak_scaling_efficiency([]) == []
