"""Tests for the cluster-run helpers (Fig 7/9 plumbing)."""


from repro.analysis.calibration import scaled_mpc, scaled_network, scaled_skylake
from repro.analysis.distributed import run_hpcg_cluster, run_lulesh_cluster
from repro.apps.hpcg import HpcgConfig
from repro.apps.lulesh import LuleshConfig
from repro.cluster import RankGrid


GRID = RankGrid(2, 2, 1)
LCFG = LuleshConfig(s=12, iterations=2, tpl=8, flops_per_item=25.0)
HCFG = HpcgConfig(n_rows=2048, iterations=2, tpl=8, spmv_sub=2)


class TestLuleshCluster:
    def test_all_ranks_return(self):
        res = run_lulesh_cluster(GRID, LCFG, n_threads=2, network=scaled_network())
        assert res.n_ranks == 4
        assert all(r.n_tasks > 0 for r in res.results)

    def test_exactly_one_profiled_rank(self):
        res = run_lulesh_cluster(GRID, LCFG, n_threads=2, network=scaled_network())
        profiled = [r for r in res.results if r.extra.get("profiled")]
        assert len(profiled) == 1
        assert profiled[0].trace is not None
        assert len(profiled[0].trace) > 0

    def test_unprofiled_ranks_have_no_trace(self):
        res = run_lulesh_cluster(GRID, LCFG, n_threads=2, network=scaled_network())
        for r in res.results:
            if not r.extra.get("profiled"):
                assert r.trace is None

    def test_explicit_profiled_rank(self):
        res = run_lulesh_cluster(
            GRID, LCFG, n_threads=2, profiled_rank=3, network=scaled_network()
        )
        assert res.results[3].extra.get("profiled")

    def test_opts_accepted_as_string(self):
        res = run_lulesh_cluster(
            GRID, LCFG, opts="abcp", n_threads=2, network=scaled_network()
        )
        assert res.makespan > 0

    def test_parallel_for_variant(self):
        res = run_lulesh_cluster(
            GRID, LCFG, task_based=False, n_threads=2, network=scaled_network()
        )
        assert all(r.n_tasks == 0 for r in res.results)
        assert res.makespan > 0

    def test_base_config_respected(self):
        base = scaled_mpc(scaled_skylake(4), opts="b", n_threads=4)
        res = run_lulesh_cluster(
            GRID, LCFG, opts="abc", base_config=base, network=scaled_network()
        )
        # opts override wins over the base config's.
        assert res.makespan > 0


class TestHpcgCluster:
    def test_runs(self):
        res = run_hpcg_cluster(GRID, HCFG, n_threads=2, network=scaled_network())
        assert res.n_ranks == 4
        assert all(r.n_tasks > 0 for r in res.results)

    def test_collectives_matched_across_ranks(self):
        res = run_hpcg_cluster(GRID, HCFG, n_threads=2, network=scaled_network())
        # 2 Iallreduce per CG iteration per rank.
        for r in res.results:
            colls = [c for c in r.comm if c.kind == "iallreduce"]
            assert len(colls) == 2 * HCFG.iterations
