"""Tests for the discovery-cost fitting utility."""

import pytest

from repro.analysis.fit import (
    PAPER_TABLE2,
    DiscoveryObservation,
    fit_discovery_costs,
)
from repro.runtime.costs import DiscoveryCosts


def synth_observations(costs: DiscoveryCosts, rows):
    out = []
    for n, d, e, s in rows:
        t = costs.c_task * n + costs.c_dep * d + costs.c_edge * e + costs.c_edge_skip * s
        out.append(DiscoveryObservation(n, d, e, s, t))
    return out


class TestFit:
    def test_exact_recovery_on_synthetic_data(self):
        truth = DiscoveryCosts(c_task=2e-6, c_dep=3e-7, c_edge=9e-7, c_edge_skip=4e-7)
        obs = synth_observations(truth, [
            (1e5, 7e5, 3e6, 0),
            (1e5, 4e5, 1e6, 2e6),
            (2e5, 1.4e6, 8e6, 0),
            (2e5, 8e5, 2e6, 5e6),
            (5e4, 3e5, 5e5, 1e5),
        ])
        fit = fit_discovery_costs(obs)
        assert fit.relative_residual < 1e-9
        assert fit.costs.c_task == pytest.approx(2e-6, rel=1e-6)
        assert fit.costs.c_edge == pytest.approx(9e-7, rel=1e-6)

    def test_non_negative_constants(self):
        obs = synth_observations(DiscoveryCosts(), [
            (1e5, 7e5, 3e6, 0), (2e5, 1.4e6, 1e6, 4e6), (3e4, 2e5, 9e5, 1e5),
        ])
        fit = fit_discovery_costs(obs)
        for f in ("c_task", "c_dep", "c_edge", "c_edge_skip"):
            assert getattr(fit.costs, f) >= 0

    def test_base_fields_preserved(self):
        base = DiscoveryCosts(c_replay=1.23e-7)
        obs = synth_observations(DiscoveryCosts(), [
            (1e5, 7e5, 3e6, 0), (2e5, 1.4e6, 8e6, 0),
        ])
        fit = fit_discovery_costs(obs, base=base)
        assert fit.costs.c_replay == 1.23e-7

    def test_needs_two_observations(self):
        with pytest.raises(ValueError, match="at least 2"):
            fit_discovery_costs([DiscoveryObservation(1, 1, 1, 0, 1.0)])

    def test_validation(self):
        with pytest.raises(ValueError):
            DiscoveryObservation(-1, 1, 1, 0, 1.0)
        with pytest.raises(ValueError):
            DiscoveryObservation(1, 1, 1, 0, 0.0)

    def test_paper_table2_fits_reasonably(self):
        """The linear cost model explains the paper's Table 2 to ~15%."""
        fit = fit_discovery_costs(PAPER_TABLE2)
        assert fit.relative_residual < 0.15
        # Edge processing lands in the sub-microsecond range the defaults use.
        assert 0.1e-6 < fit.costs.c_edge < 3e-6

    def test_str_smoke(self):
        fit = fit_discovery_costs(PAPER_TABLE2)
        assert "c_edge" in str(fit)
