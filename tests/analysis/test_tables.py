"""Tests for ASCII rendering helpers."""

import pytest

from repro.analysis.tables import fmt_speedup, render_series, render_table


class TestRenderTable:
    def test_basic(self):
        out = render_table(["a", "b"], [[1, 2], [30, 40]])
        lines = out.splitlines()
        assert "| 30 | 40 |" in lines[-2]
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])


class TestRenderSeries:
    def test_smoke(self):
        out = render_series([1, 2, 3], {"t": [1.0, 2.0, 3.0]}, width=20, height=5)
        assert "t" in out
        assert "|" in out

    def test_multiple_series_legend(self):
        out = render_series([1, 2], {"a": [1, 2], "b": [2, 1]})
        assert "*=a" in out and "o=b" in out

    def test_empty(self):
        assert "empty" in render_series([], {})

    def test_constant_series(self):
        out = render_series([1, 2], {"c": [5.0, 5.0]})
        assert "|" in out


class TestSpeedup:
    def test_format(self):
        assert fmt_speedup(2.0, 1.0) == "2.00x"

    def test_zero_divisor(self):
        assert fmt_speedup(1.0, 0.0) == "inf"
