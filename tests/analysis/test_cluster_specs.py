"""Spec-based cluster runs (Fig 7/9 plumbing) and shim-removal checks.

The legacy ``run_lulesh_cluster``/``run_hpcg_cluster`` helpers are gone
(see MIGRATION.md): a coupled run is now an :class:`ExperimentSpec` with
``ranks > 1`` handed to :func:`run_experiment_cluster`.  These tests keep
the behaviours the old helper tests pinned — all ranks return, exactly
one profiled (traced) rank, grid/profiled-rank overrides, the fork-join
variant and matched collectives.
"""

from dataclasses import asdict, replace

import pytest

from repro.analysis.calibration import scaled_epyc, scaled_mpc, scaled_network
from repro.apps.hpcg import HpcgConfig
from repro.apps.lulesh import LuleshConfig
from repro.campaign.runner import run_experiment_cluster
from repro.campaign.spec import ExperimentSpec
from repro.cluster import RankGrid


GRID = RankGrid(2, 2, 1)
LCFG = LuleshConfig(s=12, iterations=2, tpl=8, flops_per_item=25.0)
HCFG = HpcgConfig(n_rows=2048, iterations=2, tpl=8, spmv_sub=2)


def cluster_spec(app, app_cfg, grid, *, opts="abc", engine="task",
                 base_config=None, n_threads=2):
    """A spec mirroring the retired per-app cluster helpers' defaults."""
    cfg = (
        base_config
        if base_config is not None
        else scaled_mpc(scaled_epyc(), opts=opts, n_threads=n_threads)
    )
    return ExperimentSpec(
        app=app,
        config=replace(cfg, trace=True),
        params=asdict(app_cfg),
        engine=engine,
        ranks=grid.n_ranks,
        seed=cfg.seed,
        network=scaled_network(),
    )


class TestLuleshCluster:
    def test_all_ranks_return(self):
        res = run_experiment_cluster(cluster_spec("lulesh", LCFG, GRID), grid=GRID)
        assert res.n_ranks == 4
        assert all(r.n_tasks > 0 for r in res.results)

    def test_exactly_one_profiled_rank(self):
        res = run_experiment_cluster(cluster_spec("lulesh", LCFG, GRID), grid=GRID)
        profiled = [r for r in res.results if r.extra.get("profiled")]
        assert len(profiled) == 1
        assert profiled[0].trace is not None
        assert len(profiled[0].trace) > 0

    def test_unprofiled_ranks_have_no_trace(self):
        res = run_experiment_cluster(cluster_spec("lulesh", LCFG, GRID), grid=GRID)
        for r in res.results:
            if not r.extra.get("profiled"):
                assert r.trace is None

    def test_explicit_profiled_rank(self):
        res = run_experiment_cluster(
            cluster_spec("lulesh", LCFG, GRID), grid=GRID, profiled_rank=3
        )
        assert res.results[3].extra.get("profiled")

    def test_opts_accepted_as_string(self):
        res = run_experiment_cluster(
            cluster_spec("lulesh", LCFG, GRID, opts="abcp"), grid=GRID
        )
        assert res.makespan > 0

    def test_parallel_for_variant(self):
        res = run_experiment_cluster(
            cluster_spec("lulesh", LCFG, GRID, engine="forloop"), grid=GRID
        )
        assert all(r.n_tasks == 0 for r in res.results)
        assert res.makespan > 0

    def test_base_config_respected(self):
        from repro.analysis.calibration import scaled_skylake

        base = scaled_mpc(scaled_skylake(4), opts="abc", n_threads=4)
        res = run_experiment_cluster(
            cluster_spec("lulesh", LCFG, GRID, base_config=base), grid=GRID
        )
        assert res.makespan > 0


class TestHpcgCluster:
    def test_runs(self):
        res = run_experiment_cluster(cluster_spec("hpcg", HCFG, GRID), grid=GRID)
        assert res.n_ranks == 4
        assert all(r.n_tasks > 0 for r in res.results)

    def test_collectives_matched_across_ranks(self):
        res = run_experiment_cluster(cluster_spec("hpcg", HCFG, GRID), grid=GRID)
        # 2 Iallreduce per CG iteration per rank.
        for r in res.results:
            colls = [c for c in r.comm if c.kind == "iallreduce"]
            assert len(colls) == 2 * HCFG.iterations


class TestShimsRemoved:
    """The PR-3 deprecation shims are deleted, not just deprecated."""

    def test_distributed_module_gone(self):
        with pytest.raises(ImportError):
            import repro.analysis.distributed  # noqa: F401

    def test_run_sweep_gone(self):
        import repro.analysis
        import repro.analysis.sweep

        assert not hasattr(repro.analysis.sweep, "run_sweep")
        assert not hasattr(repro.analysis, "run_sweep")
        assert "run_sweep" not in repro.analysis.__all__
