"""Tests for TDG shape analytics."""

import pytest

from repro.analysis.graphtools import analyze_shape, to_networkx, width_profile
from repro.core import OptimizationSet, ProgramBuilder
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime


def discover(builder_fn, opts=""):
    b = ProgramBuilder("g")
    with b.iteration():
        builder_fn(b)
    rt = TaskRuntime(
        b.build(),
        RuntimeConfig(
            machine=tiny_test_machine(2),
            opts=OptimizationSet.parse(opts),
            non_overlapped=True,
        ),
    )
    rt.run()
    return rt.graph


class TestToNetworkx:
    def test_nodes_and_edges(self):
        g = discover(lambda b: (
            b.task("a", out=["x"], flops=1.0),
            b.task("b", inp=["x"], flops=2.0),
        ))
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == 2
        assert nxg.number_of_edges() == 1
        assert nxg.nodes[0]["name"] == "a"

    def test_stub_filtering(self):
        def build(b):
            for i in range(3):
                b.task(f"x{i}", inoutset=["s"], flops=1.0)
            b.task("r1", inp=["s"], flops=1.0)
            b.task("r2", inp=["s"], flops=1.0)
        g = discover(build, opts="c")
        with_stubs = to_networkx(g, include_stubs=True)
        without = to_networkx(g, include_stubs=False)
        assert with_stubs.number_of_nodes() == 6
        assert without.number_of_nodes() == 5


class TestShape:
    def test_chain(self):
        def build(b):
            for i in range(5):
                b.task(f"t{i}", inout=["x"], flops=10.0)
        shape = analyze_shape(discover(build))
        assert shape.depth == 5
        assert shape.critical_path_weight == pytest.approx(50.0)
        assert shape.avg_parallelism == pytest.approx(1.0)

    def test_fork_join(self):
        def build(b):
            b.task("head", out=["x"], flops=10.0)
            for i in range(8):
                b.task(f"w{i}", inp=["x"], out=[("y", i)], flops=10.0)
            b.task("tail", inp=[("y", i) for i in range(8)], flops=10.0)
        shape = analyze_shape(discover(build))
        assert shape.depth == 3
        assert shape.total_weight == pytest.approx(100.0)
        assert shape.critical_path_weight == pytest.approx(30.0)
        assert shape.avg_parallelism == pytest.approx(100.0 / 30.0)

    def test_custom_weight(self):
        def build(b):
            b.task("a", out=["x"], flops=1.0)
            b.task("b", inp=["x"], flops=1.0)
        shape = analyze_shape(discover(build), weight=lambda t: 7.0)
        assert shape.total_weight == pytest.approx(14.0)

    def test_empty_graph(self):
        from repro.core.graph import TaskGraph

        shape = analyze_shape(TaskGraph())
        assert shape.n_tasks == 0
        assert shape.avg_parallelism == 0.0

    def test_str(self):
        def build(b):
            b.task("a", out=["x"], flops=1.0)
        assert "avg-parallelism" in str(analyze_shape(discover(build)))


class TestWidthProfile:
    def test_fork_join_profile(self):
        def build(b):
            b.task("head", out=["x"], flops=1.0)
            for i in range(4):
                b.task(f"w{i}", inp=["x"], out=[("y", i)], flops=1.0)
            b.task("tail", inp=[("y", i) for i in range(4)], flops=1.0)
        assert width_profile(discover(build)) == [1, 4, 1]

    def test_lulesh_parallelism_scales_with_tpl(self):
        """The TDG's average parallelism grows with TPL — what refinement
        buys before discovery gets in the way."""
        from repro.apps.lulesh import LuleshConfig, build_task_program

        shapes = {}
        for tpl in (4, 16):
            prog = build_task_program(
                LuleshConfig(s=12, iterations=1, tpl=tpl), opt_a=True
            )
            rt = TaskRuntime(
                prog,
                RuntimeConfig(
                    machine=tiny_test_machine(2),
                    opts=OptimizationSet.abc(),
                    non_overlapped=True,
                ),
            )
            rt.run()
            shapes[tpl] = analyze_shape(rt.graph)
        assert shapes[16].avg_parallelism > shapes[4].avg_parallelism
