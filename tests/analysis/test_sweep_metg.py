"""Tests for TPL sweeps and METG computation."""

import pytest

from repro.analysis.metg import metg
from repro.analysis.sweep import Sweep, geometric_tpls, run_spec_sweep
from repro.analysis.calibration import scaled_mpc, scaled_skylake
from repro.campaign.spec import ExperimentSpec


def small_sweep(tpls=(4, 8, 16), opts="abc", fidelity=None):
    base = ExperimentSpec(
        app="lulesh",
        config=scaled_mpc(scaled_skylake(8), opts=opts, n_threads=8),
        params={"s": 12, "iterations": 2, "tpl": tpls[0]},
    )
    return run_spec_sweep(base, list(tpls), fidelity=fidelity)


class TestGeometricTpls:
    def test_endpoints(self):
        t = geometric_tpls(4, 256, 7)
        assert t[0] == 4 and t[-1] == 256

    def test_deduplicated_sorted(self):
        t = geometric_tpls(2, 8, 20)
        assert t == sorted(set(t))

    def test_bad_spec(self):
        with pytest.raises(ValueError):
            geometric_tpls(10, 2, 3)


class TestSweep:
    def test_runs_all_points(self):
        sw = small_sweep()
        assert sw.tpls == [4, 8, 16]
        assert all(p.n_tasks > 0 for p in sw.points)

    def test_series_extraction(self):
        sw = small_sweep()
        assert len(sw.series("total")) == 3
        assert all(v > 0 for v in sw.series("total"))

    def test_best_point(self):
        sw = small_sweep()
        best = sw.best("total")
        assert best.total == min(p.total for p in sw.points)

    def test_work_inflation_reference_is_one(self):
        sw = small_sweep()
        infl = sw.work_inflation()
        assert min(infl) == pytest.approx(1.0)
        assert all(v >= 1.0 for v in infl)

    def test_grain_decreases_with_tpl(self):
        sw = small_sweep()
        grains = sw.series("grain")
        assert grains[0] > grains[-1]

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            Sweep([])


class TestFidelityPassThrough:
    def test_replay_sweep_tracks_des(self):
        des = small_sweep((4, 8, 16))
        rep = small_sweep((4, 8, 16), fidelity="replay")
        assert all(
            p.result.extra["fidelity"] == "replay" for p in rep.points
        )
        for d, r in zip(des.points, rep.points):
            assert abs(r.total - d.total) <= 0.10 * d.total

    def test_analytic_sweep_runs(self):
        sw = small_sweep((4, 8), fidelity="analytic")
        assert all(p.result.extra["bounds"] is not None for p in sw.points)
        assert all(p.total > 0 for p in sw.points)


class TestMetg:
    def test_basic(self):
        sweeps = {"mpc": small_sweep((4, 8, 16, 32))}
        out = metg(sweeps, efficiency=0.5)
        m = out["mpc"]
        assert m.metg is not None
        assert m.metg > 0
        assert m.tpl in (4, 8, 16, 32)

    def test_high_efficiency_selects_coarser_or_none(self):
        sweeps = {"mpc": small_sweep((4, 8, 16, 32))}
        strict = metg(sweeps, efficiency=1.0)["mpc"]
        loose = metg(sweeps, efficiency=0.5)["mpc"]
        if strict.metg is not None:
            assert loose.metg <= strict.metg

    def test_cross_runtime_reference(self):
        """METG is measured against the best runtime overall."""
        fast = small_sweep((4, 8, 16), opts="abc")
        slow = small_sweep((4, 8, 16), opts="")
        out = metg({"fast": fast, "slow": slow}, efficiency=0.95)
        assert out["fast"].best_total == out["slow"].best_total

    def test_validation(self):
        with pytest.raises(ValueError):
            metg({}, efficiency=0.95)
        with pytest.raises(ValueError):
            metg({"x": small_sweep((4,))}, efficiency=1.5)

    def test_str_smoke(self):
        out = metg({"mpc": small_sweep((4, 8))}, efficiency=0.5)
        assert "METG" in str(out["mpc"])
