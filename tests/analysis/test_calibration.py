"""Tests for the scaled-experiment calibration helpers."""

import pytest

from repro.analysis.calibration import (
    COST_SCALE,
    scale_costs,
    scaled_epyc,
    scaled_gcc,
    scaled_llvm,
    scaled_mpc,
    scaled_network,
    scaled_skylake,
)
from repro.apps.lulesh import LuleshConfig
from repro.mpi.network import bxi_like


class TestScaledMachines:
    def test_skylake_keeps_cores_and_bandwidths(self):
        m = scaled_skylake()
        assert m.n_cores == 24
        from repro.memory.machine import skylake_8168

        assert m.dram_bw == skylake_8168().dram_bw

    def test_l3_below_one_field_group(self):
        """The key scaling invariant: one LULESH field group must exceed
        the scaled L3, otherwise the fork-join baseline gets inter-loop
        reuse the paper's scale forbids."""
        m = scaled_skylake()
        cfg = LuleshConfig(s=48, iterations=1, tpl=8)
        assert cfg.group_bytes("elems", "energy") > m.l3_bytes
        assert cfg.group_bytes("nodes", "pos") > m.l3_bytes

    def test_epyc_core_count(self):
        assert scaled_epyc().n_cores == 16


class TestScaledCosts:
    def test_scale_costs_applies_to_both(self):
        cfg = scaled_mpc()
        from repro.runtime.costs import DiscoveryCosts, SchedulerCosts

        assert cfg.discovery.c_task == pytest.approx(
            DiscoveryCosts().c_task * COST_SCALE
        )
        assert cfg.sched.c_pop == pytest.approx(SchedulerCosts().c_pop * COST_SCALE)

    def test_custom_factor(self):
        cfg = scale_costs(scaled_mpc(factor=1.0), 0.5)
        from repro.runtime.costs import DiscoveryCosts

        assert cfg.discovery.c_task == pytest.approx(DiscoveryCosts().c_task * 0.5)

    def test_presets_inherit_runtime_identity(self):
        assert scaled_llvm().opts.c and not scaled_llvm().opts.b
        assert scaled_gcc().scheduler == "fifo-bf"
        assert scaled_mpc().scheduler == "lifo-df"


class TestScaledNetwork:
    def test_latencies_scaled_bandwidth_kept(self):
        n = scaled_network()
        ref = bxi_like()
        assert n.latency == pytest.approx(ref.latency * COST_SCALE)
        assert n.allreduce_alpha == pytest.approx(ref.allreduce_alpha * COST_SCALE)
        assert n.bandwidth == ref.bandwidth
