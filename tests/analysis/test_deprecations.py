"""Legacy factory-based entry points must warn before they disappear."""

import pytest

from repro.analysis.calibration import scaled_network
from repro.analysis.distributed import run_hpcg_cluster, run_lulesh_cluster
from repro.analysis.sweep import run_sweep
from repro.apps.hpcg import HpcgConfig
from repro.apps.lulesh import LuleshConfig, build_task_program
from repro.cluster import RankGrid
from repro.core import OptimizationSet
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig

GRID = RankGrid(2, 1, 1)


class TestDeprecationWarnings:
    def test_run_sweep_warns(self):
        def program_factory(tpl):
            return build_task_program(LuleshConfig(s=8, iterations=1, tpl=tpl))

        def config_factory(tpl):
            return RuntimeConfig(
                machine=tiny_test_machine(4),
                opts=OptimizationSet.parse("ab"),
            )

        with pytest.warns(DeprecationWarning, match="run_spec_sweep"):
            sweep = run_sweep([4, 8], program_factory, config_factory)
        assert len(sweep.points) == 2

    def test_run_lulesh_cluster_warns(self):
        with pytest.warns(DeprecationWarning, match="run_experiment_cluster"):
            res = run_lulesh_cluster(
                GRID,
                LuleshConfig(s=8, iterations=1, tpl=4),
                n_threads=2,
                network=scaled_network(),
            )
        assert res.n_ranks == 2

    def test_run_hpcg_cluster_warns(self):
        with pytest.warns(DeprecationWarning, match="run_experiment_cluster"):
            res = run_hpcg_cluster(
                GRID,
                HpcgConfig(n_rows=1024, iterations=1, tpl=4),
                n_threads=2,
                network=scaled_network(),
            )
        assert res.n_ranks == 2
