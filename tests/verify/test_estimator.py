"""Discovery estimator: exact edge prediction and the Fig-1 bound direction."""

import pytest

from repro.analysis.calibration import scaled_llvm, scaled_skylake
from repro.apps.lulesh import LuleshConfig, build_task_program
from repro.core.optimizations import OptimizationSet
from repro.core.program import ProgramBuilder
from repro.memory.machine import tiny_test_machine
from repro.runtime import presets
from repro.runtime.runtime import TaskRuntime
from repro.verify.estimator import check_discovery_bound, estimate_discovery
from repro.verify.static_graph import discover_static

ABCP = OptimizationSet.parse("abcp")


class TestExactEdgeCounts:
    """The acceptance bar: static counts == DES counts, to the edge."""

    @pytest.mark.parametrize("tpl", [8, 32])
    def test_lulesh_persistent_matches_des(self, tpl):
        prog = build_task_program(
            LuleshConfig(s=16, iterations=3, tpl=tpl), opt_a=True
        )
        tdg = discover_static(prog, ABCP)
        cfg = presets.mpc_omp(tiny_test_machine(4), opts=ABCP, n_threads=4)
        res = TaskRuntime(prog, cfg).run()
        assert tdg.graph.stats.created == res.edges.created
        assert res.edges.pruned == 0
        assert tdg.graph.stats.duplicates_skipped == res.edges.duplicates_skipped
        assert tdg.graph.stats.redirect_nodes == res.edges.redirect_nodes

    def test_lulesh_non_overlapped_matches_des(self):
        from dataclasses import replace

        opts = OptimizationSet.parse("abc")
        prog = build_task_program(
            LuleshConfig(s=16, iterations=2, tpl=8), opt_a=True
        )
        tdg = discover_static(prog, opts)
        cfg = replace(
            presets.mpc_omp(tiny_test_machine(4), opts=opts, n_threads=4),
            non_overlapped=True,
        )
        res = TaskRuntime(prog, cfg).run()
        assert tdg.graph.stats.created == res.edges.created
        assert res.edges.pruned == 0


class TestEstimate:
    def test_shape_and_costs_populated(self):
        prog = build_task_program(
            LuleshConfig(s=16, iterations=3, tpl=8), opt_a=True
        )
        est, tdg = estimate_discovery(prog, ABCP, scaled_skylake())
        assert est.persistent
        assert est.n_tasks == tdg.n_user_tasks
        assert est.edges_created == tdg.n_edges
        assert est.discovery_total == pytest.approx(sum(tdg.iteration_costs))
        assert est.steady_iteration_cost < est.first_iteration_cost
        assert est.t1 > est.t_inf > 0
        assert est.depth > 1
        assert est.exec_estimate > 0

    def test_threads_default_to_machine_cores(self):
        prog = build_task_program(
            LuleshConfig(s=8, iterations=1, tpl=8), opt_a=True
        )
        m = scaled_skylake()
        est, _ = estimate_discovery(prog, ABCP, m)
        assert est.threads == m.n_cores

    def test_to_dict_roundtrips_counts(self):
        prog = build_task_program(
            LuleshConfig(s=8, iterations=1, tpl=8), opt_a=True
        )
        est, _ = estimate_discovery(prog, ABCP, scaled_skylake())
        d = est.to_dict()
        assert d["edges"]["created"] == est.edges_created
        assert d["discovery"]["total"] == est.discovery_total


class TestDiscoveryBoundDirection:
    """Fig. 1: the static warning agrees with the DES crossover direction."""

    @pytest.mark.parametrize("tpl,expect_bound", [(4, False), (256, True)])
    def test_direction_agreement(self, tpl, expect_bound):
        machine = scaled_skylake()
        cfg = scaled_llvm(machine, name="llvm")
        prog = build_task_program(
            LuleshConfig(s=48, iterations=8, tpl=tpl), opt_a=False
        )
        res = TaskRuntime(prog, cfg).run()
        des_bound = res.discovery_busy >= res.execution_time
        est, _ = estimate_discovery(
            prog, cfg.opts, machine,
            threads=cfg.n_threads or machine.n_cores, costs=cfg.discovery,
        )
        # Coarse grains: neither sees a discovery bound; fine grains: both do.
        assert est.discovery_bound is expect_bound
        assert des_bound is expect_bound

    def test_warning_carries_numbers(self):
        b = ProgramBuilder("tiny-tasks")
        with b.iteration():
            for i in range(50):
                b.task(f"t{i}", out=[i], flops=1.0)
        est, _ = estimate_discovery(
            b.build(), OptimizationSet.parse("ab"), scaled_skylake()
        )
        assert est.discovery_bound
        [f] = check_discovery_bound(est)
        assert f.rule == "V-DISC-BOUND"
        assert f.data["ratio"] > 1

    def test_no_warning_when_execution_dominates(self):
        b = ProgramBuilder("fat-tasks")
        with b.iteration():
            for i in range(4):
                b.task(f"t{i}", out=[i], flops=1e9)
        est, _ = estimate_discovery(
            b.build(), OptimizationSet.parse("ab"), scaled_skylake()
        )
        assert not est.discovery_bound
        assert check_discovery_bound(est) == []


class TestDegenerateGraphs:
    """The estimator must stay total on empty and trivial programs."""

    def test_empty_program(self):
        prog = ProgramBuilder("empty").build()
        est, tdg = estimate_discovery(
            prog, OptimizationSet.parse("ab"), scaled_skylake()
        )
        assert est.n_tasks == 0
        assert est.edges_created == 0
        assert est.discovery_total == 0.0
        assert tdg.n_edges == 0
        assert check_discovery_bound(est) == []

    def test_single_task(self):
        b = ProgramBuilder("one")
        with b.iteration():
            b.task("only", out=["x"], flops=1e6)
        est, tdg = estimate_discovery(
            b.build(), OptimizationSet.parse("ab"), scaled_skylake()
        )
        assert est.n_tasks == 1
        assert est.edges_created == 0
        assert est.exec_estimate > 0
        assert not est.discovery_bound

    def test_all_independent_tasks(self):
        # A pure fan: no dependences at all; the critical path is one
        # task and the edge count must stay zero.
        b = ProgramBuilder("fan")
        with b.iteration():
            for i in range(32):
                b.task(f"t{i}", out=[("x", i)], flops=1e7)
        est, tdg = estimate_discovery(
            b.build(), OptimizationSet.parse("ab"), scaled_skylake()
        )
        assert est.n_tasks == 32
        assert est.edges_created == 0
        assert tdg.n_edges == 0
        # Perfectly parallel: the exec estimate is bounded by the
        # work-law term, not a chain.
        assert est.exec_estimate > 0
