"""Race detector: seeded footprint races and their legal orderings."""

from repro.core.optimizations import OptimizationSet
from repro.core.program import ProgramBuilder
from repro.core.task import AccessMode
from repro.verify.races import find_races
from repro.verify.static_graph import discover_static

CHUNK = 7


def tdg_of(build, opts="ab"):
    b = ProgramBuilder("race-test")
    with b.iteration():
        build(b)
    return discover_static(b.build(), OptimizationSet.parse(opts))


class TestRaces:
    def test_unordered_writers_race(self):
        def build(b):
            # Footprints share a chunk; the depend clauses do not mention it.
            b.task("w0", out=["a"], footprint=[(CHUNK, 64, AccessMode.WRITE)])
            b.task("w1", out=["b"], footprint=[(CHUNK, 64, AccessMode.WRITE)])

        findings = find_races(tdg_of(build))
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "V-RACE"
        assert f.severity.name == "ERROR"
        assert set(f.tasks) == {"w0", "w1"}
        assert f.data["kind"] == "write/write"

    def test_read_write_race(self):
        def build(b):
            b.task("w", out=["a"], footprint=[(CHUNK, 64, AccessMode.WRITE)])
            b.task("r", out=["b"], footprint=[(CHUNK, 64, AccessMode.READ)])

        findings = find_races(tdg_of(build))
        assert len(findings) == 1
        assert findings[0].data["kind"] == "read/write"
        # Writer is listed first.
        assert findings[0].tasks[0] == "w"

    def test_read_read_is_not_a_race(self):
        def build(b):
            b.task("r0", out=["a"], footprint=[(CHUNK, 64, AccessMode.READ)])
            b.task("r1", out=["b"], footprint=[(CHUNK, 64, AccessMode.READ)])

        assert find_races(tdg_of(build)) == []

    def test_dependence_edge_orders(self):
        def build(b):
            b.task("w0", out=["x"], footprint=[(CHUNK, 64, AccessMode.WRITE)])
            b.task("w1", inp=["x"], footprint=[(CHUNK, 64, AccessMode.WRITE)])

        assert find_races(tdg_of(build)) == []

    def test_transitive_path_orders(self):
        def build(b):
            b.task("w0", out=["x"], footprint=[(CHUNK, 64, AccessMode.WRITE)])
            b.task("mid", inp=["x"], out=["y"])
            b.task("w1", inp=["y"], footprint=[(CHUNK, 64, AccessMode.WRITE)])

        assert find_races(tdg_of(build)) == []

    def test_taskwait_orders(self):
        def build(b):
            b.task("w0", out=["a"], footprint=[(CHUNK, 64, AccessMode.WRITE)])
            b.taskwait()
            b.task("w1", out=["b"], footprint=[(CHUNK, 64, AccessMode.WRITE)])

        assert find_races(tdg_of(build)) == []

    def test_inoutset_group_is_sanctioned(self):
        def build(b):
            b.task("s0", inoutset=["f"], footprint=[(CHUNK, 64, AccessMode.READWRITE)])
            b.task("s1", inoutset=["f"], footprint=[(CHUNK, 64, AccessMode.READWRITE)])

        assert find_races(tdg_of(build)) == []

    def test_inoutset_does_not_exempt_readers(self):
        def build(b):
            b.task("s0", inoutset=["f"], footprint=[(CHUNK, 64, AccessMode.READWRITE)])
            b.task("r", out=["o"], footprint=[(CHUNK, 64, AccessMode.READ)])

        findings = find_races(tdg_of(build))
        assert len(findings) == 1

    def test_default_chunks_are_readwrite(self):
        def build(b):
            # Plain (chunk, bytes) 2-tuples: conservatively read-modify-write.
            b.task("t0", out=["a"], footprint=[(CHUNK, 64)])
            b.task("t1", out=["b"], footprint=[(CHUNK, 64)])

        findings = find_races(tdg_of(build))
        assert len(findings) == 1
        assert findings[0].data["kind"] == "write/write"

    def test_truncation_cap(self):
        def build(b):
            for i in range(20):
                b.task(f"w{i}", out=[f"a{i}"], footprint=[(CHUNK, 64, AccessMode.WRITE)])

        findings = find_races(tdg_of(build))
        from repro.verify.races import MAX_RACE_FINDINGS

        assert len(findings) == MAX_RACE_FINDINGS + 1
        assert "truncated" in findings[-1].message


class TestShippedAppsRaceFree:
    def test_lulesh_race_free_persistent(self):
        from repro.apps.lulesh import LuleshConfig, build_task_program

        prog = build_task_program(
            LuleshConfig(s=8, iterations=2, tpl=8), opt_a=True
        )
        tdg = discover_static(prog, OptimizationSet.parse("abcp"))
        assert find_races(tdg) == []

    def test_cholesky_race_free(self):
        from repro.apps.cholesky import CholeskyConfig, build_task_programs

        prog = build_task_programs(CholeskyConfig(n=256, b=64))[0]
        tdg = discover_static(prog, OptimizationSet.parse("abc"))
        assert find_races(tdg) == []
