"""verify_program orchestration and the ``repro lint`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.core.program import ProgramBuilder
from repro.core.task import AccessMode
from repro.verify import PASSES, RULES, Severity, verify_program
from repro.verify.report import render_json, render_text


def racy_program():
    b = ProgramBuilder("racy")
    with b.iteration():
        b.task("w0", out=["a"], footprint=[(3, 64, AccessMode.WRITE)])
        b.task("w1", out=["b"], footprint=[(3, 64, AccessMode.WRITE)])
    return b.build()


class TestVerifyProgram:
    def test_all_passes_run_by_default(self):
        rep = verify_program(racy_program())
        assert rep.passes == list(PASSES)
        assert rep.by_rule("V-RACE")
        assert rep.worst == Severity.ERROR
        assert rep.summary["n_tasks"] == 2

    def test_pass_selection(self):
        rep = verify_program(racy_program(), passes=["lint"])
        assert rep.by_rule("V-RACE") == []
        assert "discovery_total" not in rep.summary
        assert rep.summary["n_tasks"] == 2

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown verify passes"):
            verify_program(racy_program(), passes=["racez"])

    def test_rules_registry_covers_emitted_rules(self):
        rep = verify_program(racy_program())
        assert {f.rule for f in rep} <= set(RULES)

    def test_renderers(self):
        rep = verify_program(racy_program())
        text = render_text(rep)
        assert "V-RACE" in text and "error" in text
        payload = json.loads(render_json(rep))
        assert payload["counts"]["error"] >= 1
        # Deterministic report order: (rule, rank, tasks, iteration, message).
        rules = [f["rule"] for f in payload["findings"]]
        assert rules == sorted(rules)
        assert "V-RACE" in rules

    def test_clean_program_report(self):
        b = ProgramBuilder("clean")
        with b.iteration():
            b.task("t", out=["x"], flops=1e9)
        rep = verify_program(b.build())
        assert rep.worst is None
        assert "no findings" in render_text(rep)


class TestLintCommand:
    @pytest.mark.parametrize("app", ["lulesh", "hpcg", "cholesky"])
    def test_shipped_apps_have_zero_errors(self, app, capsys):
        assert main(["lint", app]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out or "no findings" in out

    def test_json_output(self, capsys):
        assert main(["lint", "cholesky", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["program"].startswith("cholesky")
        assert payload["counts"]["error"] == 0

    def test_fail_on_warning(self, capsys):
        # HPCG at lint defaults is discovery bound -> warning -> exit 1.
        assert main(["lint", "hpcg", "--fail-on", "warning"]) == 1

    def test_opts_change_findings(self, capsys):
        # Without opt (c), HPCG's reduction fan-ins trip V-IOSET-FANIN.
        assert main(["lint", "hpcg", "--opts", "ab", "--json"]) in (0, 1)
        payload = json.loads(capsys.readouterr().out)
        rules = {f["rule"] for f in payload["findings"]}
        assert "V-IOSET-FANIN" in rules


class TestLintPolicyFlags:
    def test_bad_fail_on_exits_2(self, capsys):
        assert main(["lint", "cholesky", "--fail-on", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "--fail-on" in err
        assert "info" in err and "warning" in err and "error" in err

    def test_cluster_lint(self, capsys):
        assert main(["lint", "cholesky", "--ranks", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ranks"] == 2
        assert payload["program"].startswith("cluster[2]:")
        assert payload["counts"]["error"] == 0

    def test_baseline_roundtrip_gates_only_new(self, capsys, tmp_path):
        bl = tmp_path / "baseline.json"
        assert main(["lint", "hpcg", "--write-baseline", str(bl)]) == 0
        assert bl.exists()
        # HPCG warns at lint defaults; with the baseline applied the same
        # findings are suppressed and even --fail-on info passes.
        assert main(["lint", "hpcg", "--fail-on", "warning"]) == 1
        capsys.readouterr()
        rc = main(
            ["lint", "hpcg", "--baseline", str(bl), "--fail-on", "info",
             "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["suppressed"] != []

    def test_sarif_export(self, capsys, tmp_path):
        out = tmp_path / "lint.sarif"
        assert main(["lint", "cholesky", "--sarif", str(out)]) == 0
        log = json.loads(out.read_text())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-verify"


class TestInfoListsVerify:
    def test_info_lists_rules_and_passes(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "verify passes" in out
        for rule in RULES:
            assert rule in out
