"""Dependence linter: each rule firing on a seeded defect, silent otherwise."""

from repro.core.optimizations import OptimizationSet
from repro.core.program import IterationSpec, Program, ProgramBuilder, TaskSpec
from repro.core.task import DepMode
from repro.verify.lint import (
    lint_duplicate_deps,
    lint_inoutset_fanin,
    lint_redundant_addresses,
    lint_waw_no_reader,
)


class TestDuplicateDeps:
    def test_fires_on_hand_built_spec(self):
        # The builder rejects duplicates, so seed one via raw TaskSpec.
        spec = TaskSpec(
            name="dup", depends=((0, DepMode.IN), (0, DepMode.IN))
        )
        prog = Program([IterationSpec(index=0, tasks=[spec])])
        findings = lint_duplicate_deps(prog)
        assert len(findings) == 1
        assert findings[0].rule == "V-DUP-DEP"
        assert findings[0].tasks == ("dup",)

    def test_same_addr_different_mode_ok(self):
        spec = TaskSpec(
            name="t", depends=((0, DepMode.IN), (0, DepMode.OUT))
        )
        prog = Program([IterationSpec(index=0, tasks=[spec])])
        assert lint_duplicate_deps(prog) == []

    def test_reported_once_across_iterations(self):
        spec = TaskSpec(name="dup", depends=((0, DepMode.IN), (0, DepMode.IN)))
        its = [IterationSpec(index=k, tasks=[spec]) for k in range(3)]
        assert len(lint_duplicate_deps(Program(its))) == 1


class TestRedundantAddresses:
    def test_fires_on_fig3_pattern(self):
        # x, y, z always accessed together with the same modes (Fig. 3).
        b = ProgramBuilder("xyz")
        with b.iteration():
            b.task("init", out=["x", "y", "z"])
            b.task("use", inp=["x", "y", "z"], out=["r"])
        findings = lint_redundant_addresses(b.build())
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "V-ADDR-MERGE"
        assert f.data["deps_saved"] == 4  # (3-1) addrs * 2 items each
        assert "init" in f.tasks and "use" in f.tasks

    def test_silent_when_accesses_differ(self):
        b = ProgramBuilder("diff")
        with b.iteration():
            b.task("init", out=["x", "y"])
            b.task("use_x", inp=["x"])
            b.task("use_y", inp=["y"])
        assert lint_redundant_addresses(b.build()) == []

    def test_mode_mismatch_not_grouped(self):
        b = ProgramBuilder("modes")
        with b.iteration():
            b.task("t0", out=["x"], inp=["y"])
            b.task("t1", inp=["x"], out=["y"])
        assert lint_redundant_addresses(b.build()) == []


class TestInoutsetFanin:
    def build(self, m=3, n=4):
        b = ProgramBuilder("fanin")
        with b.iteration():
            for i in range(m):
                b.task(f"w{i}", inoutset=["f"])
            for i in range(n):
                b.task(f"r{i}", inp=["f"])
        return b.build()

    def test_fires_without_opt_c(self):
        findings = lint_inoutset_fanin(self.build(3, 4), OptimizationSet.parse("ab"))
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "V-IOSET-FANIN"
        assert f.data["edges_naive"] == 12
        assert f.data["edges_redirect"] == 7

    def test_silent_with_opt_c(self):
        assert (
            lint_inoutset_fanin(self.build(3, 4), OptimizationSet.parse("abc"))
            == []
        )

    def test_silent_for_single_writer_or_reader(self):
        opts = OptimizationSet.parse("ab")
        assert lint_inoutset_fanin(self.build(1, 4), opts) == []
        assert lint_inoutset_fanin(self.build(3, 1), opts) == []


class TestWawNoReader:
    def test_fires_on_dead_write(self):
        b = ProgramBuilder("waw")
        with b.iteration():
            b.task("w0", out=["x"])
            b.task("w1", out=["x"])
            b.task("r", inp=["x"])
        findings = lint_waw_no_reader(b.build())
        assert len(findings) == 1
        assert findings[0].rule == "V-WAW-DEAD"
        assert findings[0].tasks == ("w0", "w1")

    def test_silent_with_reader_between(self):
        b = ProgramBuilder("ok")
        with b.iteration():
            b.task("w0", out=["x"])
            b.task("r", inp=["x"])
            b.task("w1", out=["x"])
        assert lint_waw_no_reader(b.build()) == []

    def test_inout_overwrite_is_not_dead(self):
        # inout reads its own input: the previous value is observed.
        b = ProgramBuilder("inout")
        with b.iteration():
            b.task("w0", out=["x"])
            b.task("acc", inout=["x"])
        assert lint_waw_no_reader(b.build()) == []

    def test_blocked_loop_aggregates_to_one_finding(self):
        b = ProgramBuilder("blocked")
        with b.iteration():
            for blk in range(8):
                b.task(f"w0[{blk}]", out=[("x", blk)])
            for blk in range(8):
                b.task(f"w1[{blk}]", out=[("x", blk)])
        findings = lint_waw_no_reader(b.build())
        assert len(findings) == 1
        assert findings[0].data["n_addrs"] == 8
