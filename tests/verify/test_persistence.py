"""Persistence-safety checker: structural invariance proofs and refutations."""

from repro.core.optimizations import OptimizationSet
from repro.core.program import ProgramBuilder
from repro.runtime.costs import DiscoveryCosts
from repro.verify.persistence import check_persistence, first_divergence


def varying_program(*, candidate, vary="count"):
    """Two iterations whose structure diverges in a controlled way."""
    b = ProgramBuilder("vary", persistent_candidate=candidate)
    with b.iteration():
        b.task("a", out=["x"])
        b.task("b", inp=["x"])
    with b.iteration():
        if vary == "count":
            b.task("a", out=["x"])
            b.task("b", inp=["x"])
            b.task("extra", inp=["x"])  # mesh refinement between iterations
        elif vary == "deps":
            b.task("a", out=["x"])
            b.task("b", inp=["x"], out=["y"])
        elif vary == "barrier":
            b.task("a", out=["x"])
            b.taskwait()
            b.task("b", inp=["x"])
        else:
            raise AssertionError(vary)
    return b.build()


def invariant_program(*, candidate, iterations=3):
    b = ProgramBuilder("stable", persistent_candidate=candidate)
    for _ in range(iterations):
        with b.iteration():
            b.task("a", out=["x"])
            b.task("b", inp=["x"])
    return b.build()


OPTS_P = OptimizationSet.parse("abcp")
OPTS_NO_P = OptimizationSet.parse("abc")


class TestUnsafe:
    def test_task_count_divergence(self):
        prog = varying_program(candidate=True, vary="count")
        findings = check_persistence(prog, OPTS_P)
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "V-PTSG-UNSAFE"
        assert f.severity.name == "ERROR"
        assert f.iteration == 1
        assert "3 tasks" in f.data["divergence"]

    def test_dep_divergence_names_the_task(self):
        prog = varying_program(candidate=True, vary="deps")
        [f] = check_persistence(prog, OPTS_P)
        assert "'b'" in f.data["divergence"]
        assert "depend" in f.data["divergence"]

    def test_barrier_position_divergence(self):
        prog = varying_program(candidate=True, vary="barrier")
        [f] = check_persistence(prog, OPTS_P)
        assert "taskwait positions" in f.data["divergence"]

    def test_varying_but_not_claimed_is_silent(self):
        prog = varying_program(candidate=False, vary="count")
        assert check_persistence(prog, OPTS_P) == []


class TestMissed:
    def test_invariant_not_candidate(self):
        prog = invariant_program(candidate=False)
        [f] = check_persistence(prog, OPTS_P)
        assert f.rule == "V-PTSG-MISSED"
        assert f.severity.name == "INFO"
        assert "persistent_candidate" in f.hint

    def test_invariant_candidate_but_opt_p_off(self):
        prog = invariant_program(candidate=True)
        [f] = check_persistence(prog, OPTS_NO_P)
        assert f.rule == "V-PTSG-MISSED"
        assert "optimization (p)" in f.hint

    def test_sound_and_enabled_is_silent(self):
        prog = invariant_program(candidate=True)
        assert check_persistence(prog, OPTS_P) == []

    def test_single_iteration_is_silent(self):
        prog = invariant_program(candidate=False, iterations=1)
        assert check_persistence(prog, OPTS_P) == []

    def test_costs_annotate_replay_saving(self):
        prog = invariant_program(candidate=False)
        [f] = check_persistence(prog, OPTS_P, costs=DiscoveryCosts())
        assert f.data["template_tasks"] == 2
        assert f.data["replay_cost_per_iteration"] > 0


class TestFirstDivergence:
    def test_identical_is_none(self):
        prog = invariant_program(candidate=False, iterations=2)
        assert first_divergence(prog.iterations[0], prog.iterations[1]) is None

    def test_shipped_apps_are_invariant(self):
        from repro.apps.hpcg import HpcgConfig, build_task_program
        from repro.apps.lulesh import LuleshConfig
        from repro.apps.lulesh import build_task_program as bl

        for prog in (
            bl(LuleshConfig(s=8, iterations=3, tpl=8), opt_a=True),
            build_task_program(HpcgConfig(n_rows=4096, iterations=3, tpl=8)),
        ):
            assert prog.persistent_candidate
            assert check_persistence(prog, OPTS_P) == []
