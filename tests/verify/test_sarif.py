"""SARIF 2.1.0 export structure."""

import json

from repro.verify import REGISTRY
from repro.verify.engine import Baseline
from repro.verify.findings import Finding, Report, Severity
from repro.verify.sarif import (
    FINGERPRINT_KEY,
    SARIF_VERSION,
    render_sarif,
    to_sarif,
)


def report_with_suppression():
    rep = Report(
        "demo",
        findings=[
            Finding(
                rule="V-RACE",
                severity=Severity.ERROR,
                message="race",
                tasks=("a", "b"),
            ),
            Finding(
                rule="V-DISC-BOUND",
                severity=Severity.WARNING,
                message="bound",
                hint="coarsen",
                data={"n_tasks": 10},
            ),
        ],
        passes=["races", "estimator"],
        ranks=2,
    )
    Baseline.from_report(Report("demo", findings=[rep.findings[0]])).apply(rep)
    return rep


class TestSarif:
    def test_log_structure(self):
        log = to_sarif(report_with_suppression(), REGISTRY)
        assert log["version"] == SARIF_VERSION
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-verify"
        assert {r["id"] for r in driver["rules"]} == set(REGISTRY.ids())
        assert run["properties"]["ranks"] == 2

    def test_results_reference_rules_by_index(self):
        log = to_sarif(report_with_suppression(), REGISTRY)
        (run,) = log["runs"]
        rules = run["tool"]["driver"]["rules"]
        for res in run["results"]:
            assert rules[res["ruleIndex"]]["id"] == res["ruleId"]

    def test_levels_and_fingerprints(self):
        log = to_sarif(report_with_suppression(), REGISTRY)
        (run,) = log["runs"]
        by_rule = {r["ruleId"]: r for r in run["results"]}
        assert by_rule["V-RACE"]["level"] == "error"
        assert by_rule["V-DISC-BOUND"]["level"] == "warning"
        for res in run["results"]:
            assert FINGERPRINT_KEY in res["partialFingerprints"]

    def test_baselined_results_carry_suppressions(self):
        log = to_sarif(report_with_suppression(), REGISTRY)
        (run,) = log["runs"]
        by_rule = {r["ruleId"]: r for r in run["results"]}
        (sup,) = by_rule["V-RACE"]["suppressions"]
        assert sup["kind"] == "external"
        assert "suppressions" not in by_rule["V-DISC-BOUND"]

    def test_info_maps_to_note(self):
        rep = Report(
            "demo",
            findings=[
                Finding(
                    rule="V-PTSG-MISSED",
                    severity=Severity.INFO,
                    message="missed",
                )
            ],
        )
        (run,) = to_sarif(rep, REGISTRY)["runs"]
        assert run["results"][0]["level"] == "note"

    def test_render_is_deterministic_json(self):
        rep = report_with_suppression()
        a = render_sarif(rep, REGISTRY)
        b = render_sarif(rep, REGISTRY)
        assert a == b
        json.loads(a)
