"""Rule engine: registry, per-run config, baselines, fingerprints, and
the deterministic finding order the whole workflow keys on."""

import json

import pytest

from repro.verify import CLUSTER_PASSES, PASSES, REGISTRY
from repro.verify.engine import (
    Baseline,
    Rule,
    RuleConfig,
    RuleRegistry,
    apply_policy,
)
from repro.verify.findings import (
    REPORT_SCHEMA,
    REPORT_SCHEMA_VERSION,
    Finding,
    Report,
    Severity,
)


def mk(rule="V-RACE", sev=Severity.ERROR, tasks=("a", "b"), rank=-1, **data):
    return Finding(
        rule=rule,
        severity=sev,
        message=f"{rule} on {'/'.join(tasks)}",
        tasks=tasks,
        rank=rank,
        data=data,
    )


class TestRegistry:
    def test_double_registration_rejected(self):
        reg = RuleRegistry()
        reg.register(Rule("X-1", "lint", Severity.INFO, "x"))
        with pytest.raises(ValueError, match="registered twice"):
            reg.register(Rule("X-1", "lint", Severity.ERROR, "y"))

    def test_shipped_registry_is_consistent(self):
        families = {r.family for r in REGISTRY}
        # Every family is a pass name somewhere (single-rank or cluster);
        # 'xrace' and 'mpi' exist only in cluster runs.
        assert families <= set(PASSES) | set(CLUSTER_PASSES)
        assert "V-RACE" in REGISTRY and "V-MPI-CYCLE" in REGISTRY
        assert len(REGISTRY) == len(REGISTRY.ids())

    def test_by_family_and_catalogue(self):
        mpi = {r.id for r in REGISTRY.by_family("mpi")}
        assert mpi == {"V-MPI-UNMATCHED", "V-MPI-CYCLE", "V-MPI-TAGDUP"}
        cat = REGISTRY.catalogue()
        assert cat["V-MPI-CYCLE"].endswith("[error]")


class TestRuleConfig:
    def test_unknown_rule_rejected(self):
        cfg = RuleConfig.from_dict({"disable": ["V-NOPE"]})
        with pytest.raises(ValueError, match="V-NOPE"):
            cfg.validate(REGISTRY)

    def test_disable_and_override(self):
        cfg = RuleConfig.from_dict(
            {"disable": ["V-RACE"], "severity": {"V-DISC-BOUND": "error"}}
        )
        cfg.validate(REGISTRY)
        fs = [
            mk("V-RACE"),
            mk("V-DISC-BOUND", Severity.WARNING, tasks=()),
        ]
        out = cfg.apply(fs)
        assert [f.rule for f in out] == ["V-DISC-BOUND"]
        assert out[0].severity == Severity.ERROR


class TestFingerprint:
    def test_floats_do_not_churn(self):
        # Calibration drift changes the numbers but not the finding
        # identity — the baseline contract.
        a = mk("V-DISC-BOUND", n_tasks=100, discovery_total=1.5e-3)
        b = mk("V-DISC-BOUND", n_tasks=100, discovery_total=2.9e-3)
        assert a.fingerprint == b.fingerprint

    def test_structural_fields_do(self):
        assert mk(n_edges=3).fingerprint != mk(n_edges=4).fingerprint
        assert mk(rank=0).fingerprint != mk(rank=1).fingerprint
        assert (
            mk(tasks=("a", "b")).fingerprint != mk(tasks=("a", "c")).fingerprint
        )

    def test_stable_value(self):
        # Pin one fingerprint: a change here is a baseline-breaking event
        # and must be released as such.
        f = Finding(rule="V-RACE", severity=Severity.ERROR, message="m")
        assert f.fingerprint == f.fingerprint
        assert len(f.fingerprint) == 16
        assert json.dumps(f.to_dict())  # JSON-safe


class TestBaseline:
    def test_roundtrip_and_apply(self, tmp_path):
        rep = Report("p", findings=[mk(), mk("V-DUP-DEP", Severity.WARNING)])
        bl = Baseline.from_report(rep)
        path = tmp_path / "b.json"
        bl.save(path)
        loaded = Baseline.load(path)
        assert loaded.program == "p"
        assert set(loaded.entries) == set(bl.entries)

        fresh = Report(
            "p",
            findings=[
                mk(),
                mk("V-DUP-DEP", Severity.WARNING),
                mk("V-WAW-DEAD", Severity.WARNING, tasks=("w",)),
            ],
        )
        assert loaded.apply(fresh) == 2
        assert [f.rule for f in fresh.findings] == ["V-WAW-DEAD"]
        assert len(fresh.suppressed) == 2
        # Suppressed findings no longer gate the exit code.
        assert fresh.at_least(Severity.ERROR) == []

    def test_unused_entries_reported(self):
        rep = Report("p", findings=[mk()])
        bl = Baseline.from_report(rep)
        bl.entries["deadbeefdeadbeef"] = {"rule": "V-RACE"}
        bl.apply(rep)
        assert bl.unused(rep) == ["deadbeefdeadbeef"]

    def test_rewrite_keeps_suppressed(self):
        rep = Report("p", findings=[mk()])
        Baseline.from_report(rep).apply(rep)
        assert rep.findings == []
        # from_report over an already-suppressed report loses nothing.
        assert len(Baseline.from_report(rep)) == 1

    def test_schema_guard(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something.else"}))
        with pytest.raises(ValueError, match="not a verify baseline"):
            Baseline.load(path)

    def test_apply_policy_composes(self):
        rep = Report("p", findings=[mk(), mk("V-DUP-DEP", Severity.WARNING)])
        bl = Baseline.from_report(Report("p", findings=[mk()]))
        cfg = RuleConfig.from_dict({"severity": {"V-DUP-DEP": "info"}})
        apply_policy(rep, config=cfg, baseline=bl)
        assert [f.rule for f in rep.findings] == ["V-DUP-DEP"]
        assert rep.findings[0].severity == Severity.INFO
        assert [f.rule for f in rep.suppressed] == ["V-RACE"]


class TestReportDeterminism:
    def test_sorted_is_emission_order_independent(self):
        fs = [
            mk("V-RACE", tasks=("b", "c")),
            mk("V-DUP-DEP", Severity.WARNING, tasks=("z",)),
            mk("V-RACE", tasks=("a", "b"), rank=1),
            mk("V-RACE", tasks=("a", "b")),
        ]
        a = Report("p", findings=list(fs))
        b = Report("p", findings=list(reversed(fs)))
        assert a.sorted() == b.sorted()
        keys = [(f.rule, f.rank, f.tasks) for f in a.sorted()]
        assert keys == sorted(keys)

    def test_to_dict_is_schema_stamped(self):
        d = Report("p", findings=[mk()], ranks=4).to_dict()
        assert d["schema"] == REPORT_SCHEMA
        assert d["version"] == REPORT_SCHEMA_VERSION
        assert d["ranks"] == 4
        assert d["counts"]["error"] == 1
        assert d["findings"][0]["fingerprint"] == mk().fingerprint
