"""Detrimental-pattern detectors: seeded shapes must trip exact rules."""

from repro.core.optimizations import OptimizationSet
from repro.core.program import ProgramBuilder
from repro.memory.machine import tiny_test_machine
from repro.verify.patterns import detect_patterns
from repro.verify.static_graph import discover_static

AB = OptimizationSet.parse("ab")
ABCP = OptimizationSet.parse("abcp")


def _tdg(builder, opts=AB):
    return discover_static(builder.build(), opts)


class TestFunnel:
    def test_wide_fan_in_is_a_funnel(self):
        b = ProgramBuilder("funnel")
        with b.iteration():
            for i in range(16):
                b.task(f"prod[{i}]", out=[("p", i)], flops=100.0)
            b.task("reduce", inp=[("p", i) for i in range(16)], flops=10.0)
        findings = detect_patterns(_tdg(b))
        funnels = [f for f in findings if f.rule == "V-PAT-FUNNEL"]
        assert len(funnels) == 1
        f = funnels[0]
        assert f.tasks == ("reduce",)
        assert f.data["indegree"] == 16
        # Fig. 4 arithmetic: flat wiring m*n vs redirect m+n.
        assert f.data["edges_flat"] == 16 * max(f.data["outdegree"], 1)
        assert f.data["edges_funnel"] == 16 + f.data["outdegree"]

    def test_uniform_chain_has_no_funnel(self):
        b = ProgramBuilder("chain")
        with b.iteration():
            prev = None
            for i in range(16):
                kw = {"inp": [prev]} if prev is not None else {}
                b.task(f"t[{i}]", out=[("x", i)], **kw)
                prev = ("x", i)
        findings = detect_patterns(_tdg(b))
        assert [f for f in findings if f.rule == "V-PAT-FUNNEL"] == []


class TestProducerBound:
    def test_tiny_tasks_with_many_deps_are_producer_bound(self):
        # 64 near-zero-work tasks, 8 depend items each: discovery cost
        # dwarfs the execution the loop hands the workers.
        b = ProgramBuilder("tiny")
        with b.iteration():
            for i in range(64):
                b.task(
                    f"w[{i}]",
                    inp=[("r", i, k) for k in range(7)],
                    out=[("x", i)],
                    flops=1.0,
                    loop="tiny",
                )
        findings = detect_patterns(_tdg(b), machine=tiny_test_machine(4))
        pb = [f for f in findings if f.rule == "V-PAT-PRODBOUND"]
        assert len(pb) == 1
        assert pb[0].data["mode"] == "discovery"
        assert pb[0].data["n_tasks"] == 64

    def test_heavy_tasks_are_not(self):
        b = ProgramBuilder("heavy")
        with b.iteration():
            for i in range(8):
                b.task(f"w[{i}]", out=[("x", i)], flops=1e9, loop="heavy")
        findings = detect_patterns(_tdg(b), machine=tiny_test_machine(4))
        assert [f for f in findings if f.rule == "V-PAT-PRODBOUND"] == []


class TestStaircase:
    def test_narrow_barrier_segments(self):
        b = ProgramBuilder("stairs")
        with b.iteration():
            for seg in range(3):
                b.task(f"s[{seg}]", out=[("x", seg)], flops=100.0)
                b.taskwait()
        findings = detect_patterns(_tdg(b), threads=8)
        st = [f for f in findings if f.rule == "V-PAT-STAIRCASE"]
        assert len(st) == 1
        assert st[0].data["n_segments"] >= 3
        assert st[0].data["max_width"] == 1

    def test_persistent_template_multiplies_steps(self):
        b = ProgramBuilder("pstairs", persistent_candidate=True)
        for _ in range(4):
            with b.iteration():
                for seg in range(3):
                    b.task(f"s[{seg}]", out=[("x", seg)], flops=100.0)
                    b.taskwait()
        findings = detect_patterns(_tdg(b, ABCP), threads=8)
        st = [f for f in findings if f.rule == "V-PAT-STAIRCASE"]
        assert len(st) == 1
        assert st[0].data["effective_steps"] == st[0].data["n_segments"] * 4

    def test_wide_segments_are_clean(self):
        b = ProgramBuilder("wide")
        with b.iteration():
            for seg in range(4):
                for i in range(8):
                    b.task(f"s{seg}[{i}]", out=[("x", seg, i)], flops=100.0)
                b.taskwait()
        findings = detect_patterns(_tdg(b), threads=4)
        assert [f for f in findings if f.rule == "V-PAT-STAIRCASE"] == []


class TestRankStamping:
    def test_rank_propagates_to_findings(self):
        b = ProgramBuilder("funnel")
        with b.iteration():
            for i in range(16):
                b.task(f"prod[{i}]", out=[("p", i)])
            b.task("reduce", inp=[("p", i) for i in range(16)])
        findings = detect_patterns(_tdg(b), rank=3)
        assert findings and all(f.rank == 3 for f in findings)
