"""Cross-rank MPI verification: matching, deadlock, tag ambiguity, and
the cross-rank race pass — all without a single DES event.

Every seeded-defect test asserts the *exact* rule id the defect must
trip, per the acceptance criteria.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.program import CommKind, CommSpec, ProgramBuilder
from repro.core.task import AccessMode
from repro.memory import tiny_test_machine
from repro.mpi.network import bxi_like
from repro.runtime import RuntimeConfig
from repro.verify import verify_cluster
from repro.verify.mpi import build_cluster_tdg, check_mpi, find_cluster_races

BIG = 1 << 20  # over the eager threshold -> rendezvous protocol
SMALL = 256  # eager


def _send(b, name, peer, tag, nbytes=SMALL, **kw):
    return b.task(
        name, comm=CommSpec(CommKind.ISEND, nbytes, peer=peer, tag=tag), **kw
    )


def _recv(b, name, peer, tag, nbytes=SMALL, **kw):
    return b.task(
        name, comm=CommSpec(CommKind.IRECV, nbytes, peer=peer, tag=tag), **kw
    )


def exchange_programs():
    """Healthy 2-rank exchange: both sides post send + matching recv."""
    progs = []
    for rank in range(2):
        peer = 1 - rank
        b = ProgramBuilder(f"xchg-r{rank}")
        with b.iteration():
            _recv(b, "recv", peer, tag=rank, out=["rbuf"])
            _send(b, "send", peer, tag=peer, inp=[], out=["sent"])
        progs.append(b.build())
    return progs


class TestMatching:
    def test_healthy_exchange_is_clean(self):
        ctdg = build_cluster_tdg(exchange_programs())
        assert check_mpi(ctdg) == []
        assert len(ctdg.pairs) == 2
        assert ctdg.unmatched_p2p == []

    def test_missing_recv_is_unmatched(self, monkeypatch):
        # Acceptance: a two-rank program with a missing receive must fail
        # citing V-MPI-UNMATCHED with zero DES events executed.
        import repro.runtime.runtime as rt

        def boom(self, *a, **kw):  # pragma: no cover - would fail the test
            raise AssertionError("static verification must not run the DES")

        monkeypatch.setattr(rt.TaskRuntime, "run", boom)

        progs = []
        b = ProgramBuilder("r0")
        with b.iteration():
            _send(b, "send", peer=1, tag=7, nbytes=100)
        progs.append(b.build())
        b = ProgramBuilder("r1")
        with b.iteration():
            b.task("compute", out=["x"], flops=10.0)
        progs.append(b.build())

        report = verify_cluster(progs)
        findings = report.by_rule("V-MPI-UNMATCHED")
        assert len(findings) == 1
        f = findings[0]
        assert f.rank == 0
        assert "never matches" in f.message
        assert "rank 1 posts no corresponding Irecv" in f.message
        assert f.data["tag"] == 7

    def test_missing_collective_rank(self):
        progs = []
        b = ProgramBuilder("r0")
        with b.iteration():
            b.task(
                "allred",
                out=["acc"],
                comm=CommSpec(CommKind.IALLREDUCE, nbytes=8),
            )
        progs.append(b.build())
        b = ProgramBuilder("r1")
        with b.iteration():
            b.task("compute", out=["x"])
        progs.append(b.build())
        findings = check_mpi(build_cluster_tdg(progs))
        assert [f.rule for f in findings] == ["V-MPI-UNMATCHED"]
        assert "1/2 ranks" in findings[0].message

    def test_persistence_mismatch_guard(self):
        b0 = ProgramBuilder("r0", persistent_candidate=True)
        with b0.iteration():
            b0.task("t", out=["x"])
        b1 = ProgramBuilder("r1")  # not a persistent candidate
        with b1.iteration():
            b1.task("t", out=["x"])
        ctdg = build_cluster_tdg([b0.build(), b1.build()], opts="abcp")
        findings = check_mpi(ctdg)
        assert [f.rule for f in findings] == ["V-MPI-UNMATCHED"]
        assert "persistent" in findings[0].message
        # Matching was skipped, not done unsoundly.
        assert ctdg.ops == []


class TestDeadlock:
    def test_crossed_rendezvous_sends_cycle(self):
        # Both ranks: big send first, then the matching recv — each send
        # blocks (rendezvous) on a recv posted only after the local send
        # completes.  The classic crossed-send deadlock.
        progs = []
        for rank in range(2):
            peer = 1 - rank
            b = ProgramBuilder(f"dead-r{rank}")
            with b.iteration():
                _send(b, "send", peer, tag=peer, nbytes=BIG, out=["buf"])
                _recv(b, "recv", peer, tag=rank, nbytes=BIG, inp=["buf"])
            progs.append(b.build())
        findings = check_mpi(build_cluster_tdg(progs))
        cycles = [f for f in findings if f.rule == "V-MPI-CYCLE"]
        assert len(cycles) == 1
        f = cycles[0]
        assert "static deadlock" in f.message
        assert f.data["ranks"] == [0, 1]
        assert f.data["n_ops"] == 4
        assert "rendezvous" in f.data["protocols"]

    def test_eager_crossed_sends_do_not_deadlock(self):
        # Same post order under the eager protocol: sends buffer and
        # complete, so there is no cycle.
        progs = []
        for rank in range(2):
            peer = 1 - rank
            b = ProgramBuilder(f"ok-r{rank}")
            with b.iteration():
                _send(b, "send", peer, tag=peer, nbytes=SMALL, out=["buf"])
                _recv(b, "recv", peer, tag=rank, nbytes=SMALL, inp=["buf"])
            progs.append(b.build())
        findings = check_mpi(build_cluster_tdg(progs))
        assert [f for f in findings if f.rule == "V-MPI-CYCLE"] == []


class TestTagAmbiguity:
    def test_unordered_same_channel_sends(self):
        b0 = ProgramBuilder("r0")
        with b0.iteration():
            _send(b0, "sendA", peer=1, tag=3, out=["a"])
            _send(b0, "sendB", peer=1, tag=3, out=["b"])  # unordered vs A
        b1 = ProgramBuilder("r1")
        with b1.iteration():
            _recv(b1, "recv1", peer=0, tag=3, out=["r1"])
            _recv(b1, "recv2", peer=0, tag=3, inp=["r1"], out=["r2"])
        findings = check_mpi(build_cluster_tdg([b0.build(), b1.build()]))
        dups = [f for f in findings if f.rule == "V-MPI-TAGDUP"]
        assert len(dups) == 1
        assert dups[0].rank == 0
        assert set(dups[0].tasks) == {"sendA", "sendB"}

    def test_ordered_same_channel_sends_are_fine(self):
        b0 = ProgramBuilder("r0")
        with b0.iteration():
            _send(b0, "sendA", peer=1, tag=3, out=["a"])
            _send(b0, "sendB", peer=1, tag=3, inp=["a"], out=["b"])
        b1 = ProgramBuilder("r1")
        with b1.iteration():
            _recv(b1, "recv1", peer=0, tag=3, out=["r1"])
            _recv(b1, "recv2", peer=0, tag=3, inp=["r1"], out=["r2"])
        findings = check_mpi(build_cluster_tdg([b0.build(), b1.build()]))
        assert [f for f in findings if f.rule == "V-MPI-TAGDUP"] == []


def roundtrip_programs(*, close_window: bool):
    """Rank 0: A writes x, sends; rank 1 bounces the message back; rank 0:
    B reads x after the return recv.  With the bounce chain, the network
    orders A before B even though rank 0's own TDG does not."""
    b0 = ProgramBuilder("rt-r0")
    with b0.iteration():
        b0.task(
            "A",
            out=["x"],
            flops=50.0,
            footprint=[("x", 64, AccessMode.WRITE)],
        )
        _send(b0, "send0", peer=1, tag=0, inp=["x"], out=["s0"])
        deps = {"out": ["rbuf"]} if close_window else {"out": ["rbuf"], "inp": []}
        _recv(b0, "recv0", peer=1, tag=1, **deps)
        b_deps = {"inp": ["rbuf"]} if close_window else {"inp": []}
        b0.task(
            "B",
            flops=50.0,
            footprint=[("x", 64, AccessMode.READ)],
            **b_deps,
        )
    b1 = ProgramBuilder("rt-r1")
    with b1.iteration():
        _recv(b1, "recv1", peer=0, tag=0, out=["m"])
        _send(b1, "send1", peer=0, tag=1, inp=["m"], out=["s1"])
    return [b0.build(), b1.build()]


class TestCrossRankRaces:
    def test_comm_chain_suppresses_race(self):
        progs = roundtrip_programs(close_window=True)
        ctdg = build_cluster_tdg(progs)
        tdg0 = ctdg.tdgs[0]
        a = next(n for n in tdg0.nodes if n.name == "A")
        bb = next(n for n in tdg0.nodes if n.name == "B")
        # Rank 0 alone cannot order A and B ...
        assert not tdg0.happens_before(a, bb)
        # ... but the bounce through rank 1 does.
        assert ctdg.happens_before(0, a, bb)
        assert find_cluster_races(ctdg) == []

    def test_open_window_is_a_cross_rank_race(self):
        progs = roundtrip_programs(close_window=False)
        ctdg = build_cluster_tdg(progs)
        races = find_cluster_races(ctdg)
        assert races, "unordered A/B on a shared chunk must race"
        assert all(f.rule in ("V-RACE", "V-RACE-XRANK") for f in races)
        rank0 = [f for f in races if f.rank == 0]
        assert any(set(f.tasks) == {"A", "B"} for f in rank0)

    def test_verify_agrees_with_des_trace(self):
        # Acceptance: where the static pass claims a cross-rank ordering,
        # the coupled-cluster DES trace must show the same order.
        progs = roundtrip_programs(close_window=True)
        ctdg = build_cluster_tdg(progs)
        tdg0 = ctdg.tdgs[0]
        a = next(n for n in tdg0.nodes if n.name == "A")
        bb = next(n for n in tdg0.nodes if n.name == "B")
        assert ctdg.happens_before(0, a, bb)

        machine = tiny_test_machine(2)
        res = Cluster(2, network=bxi_like()).run(
            progs,
            [RuntimeConfig(machine=machine, trace=True) for _ in range(2)],
        )
        t0 = res.results[0].trace.to_dict()
        end_a = max(
            e for n, e in zip(t0["name"], t0["end"]) if n == "A"
        )
        start_b = min(
            s for n, s in zip(t0["name"], t0["start"]) if n == "B"
        )
        assert end_a <= start_b


class TestClusterReport:
    def test_verify_cluster_report_shape(self):
        report = verify_cluster(exchange_programs())
        assert report.ranks == 2
        assert report.summary["comm_ops"] == 4
        assert report.summary["comm_pairs"] == 2
        assert report.program.startswith("cluster[2]:")
        assert report.by_rule("V-MPI-UNMATCHED") == []

    def test_pass_selection(self):
        report = verify_cluster(exchange_programs(), passes=["mpi"])
        assert report.passes == ["mpi"]

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            verify_cluster(exchange_programs(), passes=["des"])
