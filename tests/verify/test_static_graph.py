"""Static TDG discovery: graph structure, segments and happens-before."""

import pytest

from repro.core.optimizations import OptimizationSet
from repro.core.program import ProgramBuilder
from repro.verify.static_graph import discover_static


def chain_program(n=3, *, persistent=False, iterations=1):
    b = ProgramBuilder("chain", persistent_candidate=persistent)
    for _ in range(iterations):
        with b.iteration():
            b.task("w", out=["x"])
            for i in range(n - 1):
                b.task(f"r{i}", inp=["x"], out=[f"y{i}"])
    return b.build()


class TestDiscovery:
    def test_counts_and_nodes(self):
        tdg = discover_static(chain_program(3), OptimizationSet.parse("ab"))
        assert tdg.n_user_tasks == 3
        assert tdg.n_stubs == 0
        assert tdg.n_edges == 2
        assert [n.name for n in tdg.nodes] == ["w", "r0", "r1"]
        assert all(n.iteration == 0 for n in tdg.nodes)

    def test_redirect_stubs_registered(self):
        b = ProgramBuilder("ioset")
        with b.iteration():
            for i in range(3):
                b.task(f"w{i}", inoutset=["x"])
            for i in range(2):
                b.task(f"r{i}", inp=["x"])
        tdg = discover_static(b.build(), OptimizationSet.parse("abc"))
        assert tdg.n_user_tasks == 5
        assert tdg.n_stubs == 1
        assert tdg.graph.stats.redirect_nodes == 1
        # m + n edges through the stub.
        assert tdg.n_edges == 3 + 2

    def test_non_persistent_keeps_cross_iteration_edges(self):
        prog = chain_program(2, iterations=2)
        tdg = discover_static(prog, OptimizationSet.parse("ab"))
        assert not tdg.persistent
        # iteration 1's writer depends on iteration 0's reader (WAR) and
        # writer (WAW is transitively covered); edges cross the boundary.
        cross = [
            (p, s)
            for p, s in tdg.unique_edges()
            if tdg.nodes[p].iteration != tdg.nodes[s].iteration
        ]
        assert cross

    def test_persistent_resolves_template_only(self):
        prog = chain_program(2, persistent=True, iterations=4)
        tdg = discover_static(prog, OptimizationSet.parse("abcp"))
        assert tdg.persistent
        assert tdg.n_user_tasks == 2  # template only
        assert len({n.iteration for n in tdg.nodes}) == 1


class TestHappensBefore:
    def test_graph_path_orders(self):
        tdg = discover_static(chain_program(3), OptimizationSet.parse("ab"))
        w, r0, r1 = tdg.nodes
        assert tdg.happens_before(w, r0)
        assert not tdg.happens_before(r0, w)
        assert tdg.ordered(w, r1)
        # The two readers are mutually unordered.
        assert not tdg.ordered(r0, r1)

    def test_taskwait_orders_segments(self):
        b = ProgramBuilder("tw")
        with b.iteration():
            b.task("a", out=["x"])
            b.task("b", out=["y"])
            b.taskwait()
            b.task("c", out=["z"])
        tdg = discover_static(b.build(), OptimizationSet.parse("ab"))
        a, bb, c = tdg.nodes
        assert a.segment == bb.segment == 0
        assert c.segment == 1
        assert not tdg.ordered(a, bb)
        assert tdg.happens_before(a, c) and tdg.happens_before(bb, c)

    def test_persistent_iteration_barrier_orders(self):
        prog = chain_program(2, persistent=True, iterations=2)
        tdg = discover_static(prog, OptimizationSet.parse("abcp"))
        # Only template nodes exist, but the replay barrier bumps segments
        # so anything conceptually later is ordered after the template.
        assert tdg.nodes[-1].segment == 0

    def test_ancestors_handle_redirect_topology(self):
        # Redirect stubs get edges toward earlier tids: creation order is
        # not topological, Kahn must still close the ancestor sets.
        b = ProgramBuilder("ioset")
        with b.iteration():
            for i in range(2):
                b.task(f"w{i}", inoutset=["x"])
            for i in range(2):
                b.task(f"r{i}", inp=["x"])
        tdg = discover_static(b.build(), OptimizationSet.parse("abc"))
        w0 = tdg.nodes[0]
        readers = [n for n in tdg.nodes if n.name.startswith("r")]
        assert all(tdg.happens_before(w0, r) for r in readers)


class TestIterationCosts:
    def test_costs_only_with_costs(self):
        prog = chain_program(2, iterations=2)
        tdg = discover_static(prog, OptimizationSet.parse("ab"))
        assert tdg.iteration_costs == []

    def test_persistent_replay_cheaper(self):
        from repro.runtime.costs import DiscoveryCosts

        prog = chain_program(4, persistent=True, iterations=3)
        tdg = discover_static(
            prog, OptimizationSet.parse("abcp"), costs=DiscoveryCosts()
        )
        first, *rest = tdg.iteration_costs
        assert len(rest) == 2
        assert all(c < first for c in rest)
        assert rest[0] == pytest.approx(rest[1])
