"""Cross-variant consistency: the task and parallel-for builders must
describe the *same* computation (same flops, same data, same messages)."""

import pytest

from repro.apps.hpcg import HpcgConfig
from repro.apps.hpcg import build_for_program as hpcg_for
from repro.apps.hpcg import build_task_program as hpcg_task
from repro.apps.lulesh import LuleshConfig
from repro.apps.lulesh import build_for_program as lulesh_for
from repro.apps.lulesh import build_task_program as lulesh_task
from repro.cluster import RankGrid
from repro.core.program import CommKind
from repro.runtime.parallel_for import HaloExchangeSpec, LoopSpec


def task_flops(prog):
    return sum(s.flops for s in prog.iterations[0].tasks if s.comm is None)


def for_flops(prog):
    return sum(
        p.flops for p in prog.iterations[0].phases if isinstance(p, LoopSpec)
    )


class TestLuleshConsistency:
    CFG = LuleshConfig(s=16, iterations=2, tpl=8, flops_per_item=25.0)

    def test_loop_flops_match(self):
        """Compute tasks carry exactly the loops' flops (pack/unpack and the
        dt reduction add a small, bounded extra)."""
        t = task_flops(lulesh_task(self.CFG, opt_a=True))
        f = for_flops(lulesh_for(self.CFG))
        assert t == pytest.approx(f, rel=0.01)

    def test_flops_independent_of_tpl(self):
        f1 = task_flops(lulesh_task(LuleshConfig(s=16, iterations=1, tpl=4), opt_a=True))
        f2 = task_flops(lulesh_task(LuleshConfig(s=16, iterations=1, tpl=64), opt_a=True))
        assert f1 == pytest.approx(f2, rel=1e-9)

    def test_flops_independent_of_opt_a(self):
        f1 = task_flops(lulesh_task(self.CFG, opt_a=False))
        f2 = task_flops(lulesh_task(self.CFG, opt_a=True))
        assert f1 == pytest.approx(f2, rel=1e-9)

    def test_message_bytes_match(self):
        grid = RankGrid.cubic(8)
        nbs = grid.neighbors(0)
        t_prog = lulesh_task(self.CFG, neighbors=nbs)
        f_prog = lulesh_for(self.CFG, neighbors=nbs)
        t_bytes = sorted(
            s.comm.nbytes for s in t_prog.iterations[0].tasks
            if s.comm is not None and s.comm.kind == CommKind.ISEND
        )
        f_bytes = sorted(
            op.nbytes
            for p in f_prog.iterations[0].phases
            if isinstance(p, HaloExchangeSpec)
            for op in p.ops
            if op.kind == CommKind.ISEND
        )
        assert t_bytes == f_bytes

    def test_collectives_match(self):
        t_prog = lulesh_task(self.CFG)
        n_coll = sum(
            1 for s in t_prog.iterations[0].tasks
            if s.comm is not None and s.comm.kind == CommKind.IALLREDUCE
        )
        assert n_coll == 1  # one dt reduction per iteration in both variants


class TestHpcgConsistency:
    CFG = HpcgConfig(n_rows=4096, iterations=2, tpl=8, spmv_sub=2)

    def test_loop_flops_match(self):
        t = task_flops(hpcg_task(self.CFG))
        f = for_flops(hpcg_for(self.CFG))
        # The task variant adds tiny reduce-task flops on top of the loops.
        assert t == pytest.approx(f, rel=0.02)

    def test_collectives_match(self):
        t_prog = hpcg_task(self.CFG)
        n = sum(
            1 for s in t_prog.iterations[0].tasks
            if s.comm is not None and s.comm.kind == CommKind.IALLREDUCE
        )
        assert n == 2  # alpha and beta dots, both variants
