"""Numeric validation: the 1D hydro through the simulated runtime."""

import numpy as np
import pytest

from repro.apps.lulesh.numeric import Hydro1D, make_state
from repro.core import OptimizationSet
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime

FIELDS = ("x", "v", "f", "e", "p", "rho")


def run_task_version(n, blocks, iters, **cfg_kw):
    h = Hydro1D(n, blocks)
    prog = h.build_program(iters)
    cfg_kw.setdefault("machine", tiny_test_machine(4))
    cfg_kw.setdefault("execute_bodies", True)
    TaskRuntime(prog, RuntimeConfig(**cfg_kw)).run()
    return h


class TestState:
    def test_sod_setup(self):
        st = make_state(10)
        assert st.e[0] > st.e[-1]
        assert np.all(st.m_node > 0)

    def test_mass_conservation_setup(self):
        st = make_state(16)
        assert st.m_node.sum() == pytest.approx(st.m_elem.sum())

    def test_too_small_mesh_rejected(self):
        with pytest.raises(ValueError):
            make_state(1)

    def test_bad_blocks_rejected(self):
        with pytest.raises(ValueError):
            Hydro1D(8, 16)


class TestReferencePhysics:
    def test_shock_moves_right(self):
        h = Hydro1D(64, 4)
        h.run_reference(200)
        # The hot left side expands: interface node moved right.
        mid = 32
        assert h.st.x[mid] > mid / 64.0

    def test_energy_stays_positive(self):
        h = Hydro1D(64, 4)
        h.run_reference(200)
        assert np.all(h.st.e > 0)

    def test_momentum_budget_finite(self):
        h = Hydro1D(32, 4)
        h.run_reference(100)
        assert np.all(np.isfinite(h.st.v))


class TestTaskEquivalence:
    @pytest.mark.parametrize("blocks", [1, 3, 8])
    def test_bitwise_equal_across_blockings(self, blocks):
        ref = Hydro1D(48, blocks)
        ref.run_reference(30)
        h = run_task_version(48, blocks, 30)
        for f in FIELDS:
            assert np.array_equal(getattr(h.st, f), getattr(ref.st, f)), f

    @pytest.mark.parametrize("opts", ["", "b", "abc", "abcp"])
    def test_bitwise_equal_across_optimizations(self, opts):
        ref = Hydro1D(32, 4)
        ref.run_reference(15)
        h = run_task_version(32, 4, 15, opts=OptimizationSet.parse(opts))
        for f in FIELDS:
            assert np.array_equal(getattr(h.st, f), getattr(ref.st, f)), f

    @pytest.mark.parametrize("sched", ["lifo-df", "fifo-bf"])
    def test_bitwise_equal_across_schedulers(self, sched):
        ref = Hydro1D(32, 4)
        ref.run_reference(15)
        h = run_task_version(32, 4, 15, scheduler=sched)
        for f in FIELDS:
            assert np.array_equal(getattr(h.st, f), getattr(ref.st, f)), f

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_bitwise_equal_across_thread_counts(self, threads):
        ref = Hydro1D(32, 4)
        ref.run_reference(15)
        h = run_task_version(32, 4, 15, n_threads=threads)
        for f in FIELDS:
            assert np.array_equal(getattr(h.st, f), getattr(ref.st, f)), f

    def test_different_blockings_agree_numerically(self):
        """Blockings change nothing: gather formulation is block-invariant."""
        a = Hydro1D(48, 2)
        a.run_reference(25)
        b = Hydro1D(48, 6)
        b.run_reference(25)
        for f in FIELDS:
            assert np.allclose(getattr(a.st, f), getattr(b.st, f), rtol=1e-12), f
