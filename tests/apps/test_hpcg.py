"""HPCG app tests: structure + numeric CG validation."""

import numpy as np
import pytest

from repro.apps.hpcg import (
    HpcgConfig,
    NumericCG,
    build_for_program,
    build_task_program,
    laplacian_27pt,
    tasks_per_iteration,
)
from repro.cluster.mapping import RankGrid
from repro.core import OptimizationSet
from repro.core.program import CommKind
from repro.core.task import DepMode
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime


class TestConfig:
    def test_block_bytes(self):
        c = HpcgConfig(n_rows=1024, tpl=8)
        assert c.vector_block_bytes == 1024

    def test_tpl_bounded(self):
        with pytest.raises(ValueError):
            HpcgConfig(n_rows=8, tpl=16)

    def test_flop_counts_positive(self):
        c = HpcgConfig(n_rows=4096, tpl=16, spmv_sub=4)
        assert c.spmv_flops_per_task > 0
        assert c.vector_flops_per_task > 0


class TestTaskProgram:
    def test_task_count(self):
        c = HpcgConfig(n_rows=4096, iterations=3, tpl=16, spmv_sub=4)
        prog = build_task_program(c)
        assert prog.n_tasks == 3 * tasks_per_iteration(c)

    def test_two_allreduce_per_iteration(self):
        c = HpcgConfig(n_rows=1024, iterations=1, tpl=8)
        prog = build_task_program(c)
        colls = [
            s for s in prog.iterations[0].tasks
            if s.comm is not None and s.comm.kind == CommKind.IALLREDUCE
        ]
        assert len(colls) == 2

    def test_edges_per_task_grows_with_tpl(self):
        """Fig. 9 bottom-left: average edges/task grows ~linearly in TPL."""
        def avg_addrs(tpl):
            c = HpcgConfig(n_rows=8192, iterations=1, tpl=tpl, spmv_sub=4)
            prog = build_task_program(c)
            specs = prog.iterations[0].tasks
            return sum(len(s.depends) for s in specs) / len(specs)

        a16, a64 = avg_addrs(16), avg_addrs(64)
        assert a64 > 2.0 * a16

    def test_spmv_reads_p_slice(self):
        c = HpcgConfig(n_rows=1024, iterations=1, tpl=16, spmv_sub=4)
        prog = build_task_program(c)
        spmv = [s for s in prog.iterations[0].tasks if s.name.startswith("SpMV")]
        assert len(spmv) == 16 * 4
        # Each sub-task reads tpl/spmv_sub p blocks plus inoutset on Ap.
        n_in = sum(1 for _, m in spmv[0].depends if m == DepMode.IN)
        assert n_in == 4

    def test_runs_to_completion(self):
        c = HpcgConfig(n_rows=1024, iterations=2, tpl=8, spmv_sub=2)
        r = TaskRuntime(
            build_task_program(c),
            RuntimeConfig(machine=tiny_test_machine(4), opts=OptimizationSet.abc()),
        ).run()
        assert r.n_tasks == 2 * tasks_per_iteration(c)

    def test_distributed_runs(self):
        from dataclasses import asdict

        from repro.analysis.calibration import scaled_mpc
        from repro.campaign.runner import run_experiment_cluster
        from repro.campaign.spec import ExperimentSpec

        grid = RankGrid(2, 1, 1)
        c = HpcgConfig(n_rows=512, iterations=2, tpl=4, spmv_sub=2)
        spec = ExperimentSpec(
            app="hpcg",
            config=scaled_mpc(opts="abc", n_threads=2),
            params=asdict(c),
            ranks=grid.n_ranks,
        )
        res = run_experiment_cluster(spec, grid=grid)
        assert res.n_ranks == 2
        assert all(r.n_tasks > 0 for r in res.results)


class TestForProgram:
    def test_phase_structure(self):
        c = HpcgConfig(n_rows=1024, iterations=2, tpl=8)
        prog = build_for_program(c)
        assert prog.n_iterations == 2


class TestLaplacian:
    def test_shape_and_symmetry(self):
        a = laplacian_27pt(4, 4, 4)
        assert a.shape == (64, 64)
        assert abs(a - a.T).nnz == 0

    def test_27_point_interior_row(self):
        a = laplacian_27pt(5, 5, 5)
        center = 2 + 5 * (2 + 5 * 2)
        assert a[center].nnz == 27

    def test_positive_definite(self):
        a = laplacian_27pt(4, 4, 4).toarray()
        assert np.all(np.linalg.eigvalsh(a) > 0)


class TestNumericCG:
    def setup_method(self):
        self.a = laplacian_27pt(5, 5, 5)
        rng = np.random.default_rng(7)
        self.b = rng.normal(size=self.a.shape[0])

    def test_reference_converges(self):
        cg = NumericCG(self.a, self.b, n_blocks=5)
        cg.run_reference(30)
        assert cg.residual_norm() < 1e-6 * np.linalg.norm(self.b)

    @pytest.mark.parametrize("opts,sched", [
        ("", "lifo-df"),
        ("abc", "lifo-df"),
        ("abcp", "lifo-df"),
        ("b", "fifo-bf"),
    ])
    def test_task_execution_bitwise(self, opts, sched):
        ref = NumericCG(self.a, self.b, n_blocks=5)
        x_ref = ref.run_reference(10).copy()
        cg = NumericCG(self.a, self.b, n_blocks=5)
        prog = cg.build_program(10)
        cfg = RuntimeConfig(
            machine=tiny_test_machine(4),
            opts=OptimizationSet.parse(opts),
            scheduler=sched,
            execute_bodies=True,
        )
        TaskRuntime(prog, cfg).run()
        assert np.array_equal(cg.st.x, x_ref)

    def test_bad_blocks_rejected(self):
        with pytest.raises(ValueError):
            NumericCG(self.a, self.b, n_blocks=0)
