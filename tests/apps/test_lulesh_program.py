"""Structural tests of the LULESH task/for program builders."""

import pytest

from repro.apps.lulesh import (
    COMM_AFTER_LOOP,
    LOOP_SCHEDULE,
    LuleshConfig,
    build_for_program,
    build_task_program,
    tasks_per_iteration,
)
from repro.cluster.mapping import RankGrid
from repro.core.program import CommKind
from repro.core.task import DepMode
from repro.runtime.parallel_for import HaloExchangeSpec, LoopSpec


class TestConfig:
    def test_counts(self):
        c = LuleshConfig(s=10, iterations=2, tpl=5)
        assert c.n_elems == 1000
        assert c.n_nodes == 11**3

    def test_tpl_bounded_by_elems(self):
        with pytest.raises(ValueError, match="exceeds"):
            LuleshConfig(s=4, tpl=100)

    def test_message_size_ordering(self):
        c = LuleshConfig(s=32, tpl=8)
        assert c.message_bytes("corner") < c.message_bytes("edge") < c.message_bytes("face")

    def test_face_is_rendezvous_scale(self):
        """At the paper's problem size faces are O(s^2) — above the eager
        threshold of the default network; corners/edges below (§4.1)."""
        from repro.mpi.network import bxi_like

        net = bxi_like()
        c = LuleshConfig(s=96, tpl=8)
        assert not net.is_eager(c.message_bytes("face"))
        assert net.is_eager(c.message_bytes("edge"))
        assert net.is_eager(c.message_bytes("corner"))

    def test_workset_bytes(self):
        c = LuleshConfig(s=16, tpl=4)
        assert c.workset_bytes == c.node_bytes + c.elem_bytes

    def test_unknown_group_rejected(self):
        c = LuleshConfig(s=8, tpl=4)
        with pytest.raises(KeyError):
            c.group_block_bytes("nodes", "bogus")
        with pytest.raises(ValueError):
            c.group_block_bytes("things", "pos")


class TestSchedule:
    def test_33_loops(self):
        assert len(LOOP_SCHEDULE) == 33

    def test_comm_loop_index_valid(self):
        assert 0 <= COMM_AFTER_LOOP < len(LOOP_SCHEDULE)

    def test_ioset_loops_write_forces(self):
        for loop in LOOP_SCHEDULE:
            if loop.ioset:
                assert ("nodes", "force") in loop.writes

    def test_dt_partial_loops_exist(self):
        assert sum(1 for l in LOOP_SCHEDULE if l.dt_partial) == 2


class TestTaskProgram:
    def test_task_count(self):
        cfg = LuleshConfig(s=12, iterations=3, tpl=8)
        prog = build_task_program(cfg)
        assert prog.n_tasks == 3 * tasks_per_iteration(cfg)

    def test_task_count_with_neighbors(self):
        cfg = LuleshConfig(s=12, iterations=1, tpl=8)
        grid = RankGrid.cubic(8)
        nbs = grid.neighbors(0)
        prog = build_task_program(cfg, neighbors=nbs)
        assert prog.n_tasks == tasks_per_iteration(cfg, len(nbs))

    def test_persistent_candidate(self):
        cfg = LuleshConfig(s=8, iterations=2, tpl=4)
        assert build_task_program(cfg).persistent_candidate

    def test_iterations_share_specs(self):
        cfg = LuleshConfig(s=8, iterations=4, tpl=4)
        prog = build_task_program(cfg)
        assert prog.iterations[0].tasks is prog.iterations[2].tasks

    def test_opt_a_reduces_addresses(self):
        cfg = LuleshConfig(s=12, iterations=1, tpl=8)
        n_plain = sum(len(s.depends) for s in build_task_program(cfg, opt_a=False).iterations[0].tasks)
        n_opt = sum(len(s.depends) for s in build_task_program(cfg, opt_a=True).iterations[0].tasks)
        assert n_opt < n_plain

    def test_inoutset_used_by_force_loops(self):
        cfg = LuleshConfig(s=12, iterations=1, tpl=8)
        prog = build_task_program(cfg, opt_a=True)
        modes = {
            m
            for spec in prog.iterations[0].tasks
            if spec.name.startswith("IntegrateStressForElems")
            for _, m in spec.depends
        }
        assert DepMode.INOUTSET in modes

    def test_dt_task_has_allreduce(self):
        cfg = LuleshConfig(s=8, iterations=1, tpl=4)
        prog = build_task_program(cfg)
        dt = prog.iterations[0].tasks[0]
        assert dt.comm is not None
        assert dt.comm.kind == CommKind.IALLREDUCE

    def test_dt_task_depends_on_all_partials(self):
        cfg = LuleshConfig(s=8, iterations=1, tpl=4)
        prog = build_task_program(cfg)
        dt = prog.iterations[0].tasks[0]
        n_in = sum(1 for _, m in dt.depends if m == DepMode.IN)
        assert n_in == 2 * cfg.tpl  # two constraint loops

    def test_comm_tasks_per_neighbor(self):
        cfg = LuleshConfig(s=8, iterations=1, tpl=4)
        grid = RankGrid.cubic(27)
        nbs = grid.neighbors(grid.interior_rank())
        prog = build_task_program(cfg, neighbors=nbs)
        names = [s.name for s in prog.iterations[0].tasks]
        assert sum(1 for n in names if n.startswith("MPI_Irecv")) == 26
        assert sum(1 for n in names if n.startswith("MPI_Isend")) == 26
        assert sum(1 for n in names if n.startswith("Pack")) == 26
        assert sum(1 for n in names if n.startswith("Unpack")) == 26

    def test_footprints_shrink_with_tpl(self):
        c_coarse = LuleshConfig(s=12, iterations=1, tpl=4)
        c_fine = LuleshConfig(s=12, iterations=1, tpl=32)
        def max_chunk(cfg):
            prog = build_task_program(cfg)
            return max(
                (b for s in prog.iterations[0].tasks for _, b, *_ in s.footprint),
                default=0,
            )
        assert max_chunk(c_fine) < max_chunk(c_coarse)


class TestForProgram:
    def test_phases(self):
        cfg = LuleshConfig(s=8, iterations=2, tpl=4)
        prog = build_for_program(cfg)
        assert prog.n_iterations == 2
        loops = [p for p in prog.iterations[0].phases if isinstance(p, LoopSpec)]
        assert len(loops) == 33

    def test_halo_inserted_with_neighbors(self):
        cfg = LuleshConfig(s=8, iterations=1, tpl=4)
        grid = RankGrid.cubic(8)
        prog = build_for_program(cfg, neighbors=grid.neighbors(0))
        halos = [p for p in prog.iterations[0].phases if isinstance(p, HaloExchangeSpec)]
        assert len(halos) == 1
        assert len(halos[0].ops) == 2 * 7  # send+recv per neighbor

    def test_no_halo_without_neighbors(self):
        cfg = LuleshConfig(s=8, iterations=1, tpl=4)
        prog = build_for_program(cfg)
        assert not any(
            isinstance(p, HaloExchangeSpec) for p in prog.iterations[0].phases
        )
