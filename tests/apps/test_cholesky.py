"""Cholesky app tests: DAG structure, distribution, numerics."""

import numpy as np
import pytest

from repro.apps.cholesky import (
    CholeskyConfig,
    NumericCholesky,
    build_task_programs,
    random_spd,
)
from repro.cluster.cluster import Cluster
from repro.core import OptimizationSet
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime


def cfg(**kw):
    kw.setdefault("machine", tiny_test_machine(4))
    return RuntimeConfig(**kw)


class TestConfig:
    def test_tile_divisibility(self):
        with pytest.raises(ValueError, match="divide"):
            CholeskyConfig(n=100, b=32)

    def test_task_count_formula(self):
        c = CholeskyConfig(n=4 * 64, b=64)
        # nt=4: potrf 4, trsm 6, updates 1+3+6=10 -> 20
        assert c.n_tasks_one_factorization() == 20

    def test_block_cyclic_owner(self):
        c = CholeskyConfig(n=512, b=64, pr=2, pc=2)
        assert c.owner(0, 0) == 0
        assert c.owner(0, 1) == 1
        assert c.owner(1, 0) == 2
        assert c.owner(1, 1) == 3
        assert c.owner(2, 2) == 0

    def test_flop_counts(self):
        c = CholeskyConfig(n=256, b=64)
        assert c.gemm_flops == 2 * c.syrk_flops == 2 * c.trsm_flops
        assert c.potrf_flops < c.trsm_flops


class TestSingleRankProgram:
    def test_task_count(self):
        c = CholeskyConfig(n=256, b=64, iterations=2)
        progs = build_task_programs(c)
        assert len(progs) == 1
        real = sum(1 for s in progs[0].iterations[0].tasks if not s.barrier)
        assert 2 * real == 2 * c.n_tasks_one_factorization()

    def test_sync_iterations_appends_taskwait(self):
        c = CholeskyConfig(n=256, b=64)
        with_tw = build_task_programs(c, sync_iterations=True)[0]
        without = build_task_programs(c, sync_iterations=False)[0]
        assert with_tw.iterations[0].tasks[-1].barrier
        assert not without.iterations[0].tasks[-1].barrier

    def test_no_comm_tasks_single_rank(self):
        c = CholeskyConfig(n=256, b=64)
        prog = build_task_programs(c)[0]
        assert all(s.comm is None for s in prog.iterations[0].tasks)

    def test_runs_to_completion(self):
        c = CholeskyConfig(n=256, b=64, iterations=2)
        prog = build_task_programs(c)[0]
        r = TaskRuntime(prog, cfg(opts=OptimizationSet.parse("abcp"))).run()
        assert r.n_tasks == 2 * c.n_tasks_one_factorization()

    def test_opt_abc_no_edge_change(self):
        """§4.4: the dense regular scheme has no duplicates or inoutset, so
        (a)/(b)/(c) change nothing."""
        c = CholeskyConfig(n=320, b=64)
        prog = build_task_programs(c)[0]
        r_none = TaskRuntime(prog, cfg(non_overlapped=True)).run()
        r_abc = TaskRuntime(
            prog, cfg(non_overlapped=True, opts=OptimizationSet.abc())
        ).run()
        assert r_none.edges.created == r_abc.edges.created
        assert r_abc.edges.duplicates_skipped == 0
        assert r_abc.edges.redirect_nodes == 0


class TestDistributedProgram:
    def test_total_compute_tasks_partitioned(self):
        c = CholeskyConfig(n=512, b=64, pr=2, pc=2)
        progs = build_task_programs(c)
        total = sum(
            sum(1 for s in p.iterations[0].tasks if s.comm is None and not s.barrier)
            for p in progs
        )
        assert total == c.n_tasks_one_factorization()

    def test_sends_match_recvs(self):
        c = CholeskyConfig(n=512, b=64, pr=2, pc=2)
        progs = build_task_programs(c)
        from repro.core.program import CommKind

        sends = sum(
            1 for p in progs for s in p.iterations[0].tasks
            if s.comm is not None and s.comm.kind == CommKind.ISEND
        )
        recvs = sum(
            1 for p in progs for s in p.iterations[0].tasks
            if s.comm is not None and s.comm.kind == CommKind.IRECV
        )
        assert sends == recvs > 0

    def test_cluster_run_quiescent(self):
        c = CholeskyConfig(n=512, b=128, pr=2, pc=2, iterations=2)
        progs = build_task_programs(c)
        cluster = Cluster(4)
        res = cluster.run(progs, [cfg(n_threads=2) for _ in range(4)])
        total = sum(r.n_tasks for r in res.results)
        # comm tasks count as executed tasks too.
        assert total >= 2 * c.n_tasks_one_factorization()

    def test_ptsg_discovery_speedup(self):
        """§4.4: 5x asymptotic discovery speedup over iterations."""
        c = CholeskyConfig(n=768, b=64, iterations=8)
        prog = build_task_programs(c)[0]
        r_p = TaskRuntime(prog, cfg(opts=OptimizationSet.parse("p"))).run()
        r_np = TaskRuntime(prog, cfg()).run()
        assert r_np.discovery_busy / r_p.discovery_busy > 3.0


class TestNumericCholesky:
    def test_reference_factorization(self):
        a0 = random_spd(64, seed=1)
        nc = NumericCholesky(a0, 16)
        nc.run_reference()
        assert nc.check(a0)

    def test_matches_numpy(self):
        a0 = random_spd(64, seed=2)
        nc = NumericCholesky(a0, 16)
        nc.run_reference()
        assert np.allclose(nc.lower(), np.linalg.cholesky(a0), rtol=1e-8, atol=1e-8)

    @pytest.mark.parametrize("opts,sched", [
        ("", "lifo-df"),
        ("abc", "fifo-bf"),
        ("abcp", "lifo-df"),
    ])
    def test_task_execution_correct(self, opts, sched):
        a0 = random_spd(96, seed=3)
        nc = NumericCholesky(a0, 24)
        prog = nc.build_program()
        TaskRuntime(
            prog,
            cfg(opts=OptimizationSet.parse(opts), scheduler=sched, execute_bodies=True),
        ).run()
        assert nc.check(a0)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            NumericCholesky(np.zeros((4, 5)), 2)

    def test_bad_tile_rejected(self):
        with pytest.raises(ValueError):
            NumericCholesky(np.eye(10), 3)
