"""Cross-feature integration: persistence x comm x throttling x priority."""

import numpy as np
import pytest

from repro.core import OptimizationSet, ProgramBuilder, ThrottleConfig
from repro.core.program import CommKind, CommSpec, Program, TaskSpec
from repro.core.task import DepMode
from repro.cluster import Cluster
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime


def cfg(**kw):
    kw.setdefault("machine", tiny_test_machine(4))
    return RuntimeConfig(**kw)


class TestPersistentWithComm:
    def exchange_program(self, rank, iterations):
        peer = 1 - rank
        specs = [
            TaskSpec(name="compute", depends=((0, DepMode.INOUT),), flops=2000.0),
            TaskSpec(
                name="recv",
                depends=((1, DepMode.OUT),),
                comm=CommSpec(CommKind.IRECV, 256, peer=peer, tag=0),
            ),
            TaskSpec(
                name="send",
                depends=((0, DepMode.IN),),
                comm=CommSpec(CommKind.ISEND, 256, peer=peer, tag=0),
            ),
            TaskSpec(
                name="use",
                depends=((1, DepMode.IN), (0, DepMode.INOUT)),
                flops=2000.0,
            ),
        ]
        return Program.from_template(specs, iterations, persistent_candidate=True)

    @pytest.mark.parametrize("opts", ["abc", "abcp"])
    def test_comm_reposted_every_iteration(self, opts):
        """Persistent replay must re-post MPI requests each iteration."""
        iters = 4
        cluster = Cluster(2)
        res = cluster.run(
            [self.exchange_program(0, iters), self.exchange_program(1, iters)],
            [cfg(opts=OptimizationSet.parse(opts)) for _ in range(2)],
        )
        for r in res.results:
            sends = [c for c in r.comm if c.kind == "isend"]
            recvs = [c for c in r.comm if c.kind == "irecv"]
            assert len(sends) == iters
            assert len(recvs) == iters
            for c in sends + recvs:
                assert not np.isnan(c.complete_time)

    def test_persistent_collective_ordering(self):
        """Collective slots stay aligned across persistent iterations."""
        def prog(rank):
            specs = [
                TaskSpec(name="w", depends=((0, DepMode.INOUT),),
                         flops=1000.0 * (1 + rank)),
                TaskSpec(name="red", depends=((1, DepMode.OUT),),
                         comm=CommSpec(CommKind.IALLREDUCE, 8)),
            ]
            return Program.from_template(specs, 3, persistent_candidate=True)

        res = Cluster(2).run(
            [prog(0), prog(1)],
            [cfg(opts=OptimizationSet.parse("abcp")) for _ in range(2)],
        )
        c0 = sorted(c.complete_time for c in res.results[0].comm)
        c1 = sorted(c.complete_time for c in res.results[1].comm)
        assert np.allclose(c0, c1)


class TestThrottlingCombos:
    def test_throttled_persistent_replay(self):
        b = ProgramBuilder("p", persistent_candidate=True)
        for _ in range(4):
            with b.iteration():
                for i in range(30):
                    b.task(f"t{i}", out=[("y", i)], flops=5000.0)
        prog = b.build()
        rc = cfg(
            opts=OptimizationSet.parse("abcp"),
            throttle=ThrottleConfig(total_cap=5),
            n_threads=2,
        )
        r = TaskRuntime(prog, rc).run()
        assert r.n_tasks == 120

    def test_throttled_with_comm(self):
        def prog(rank):
            peer = 1 - rank
            specs = []
            for i in range(20):
                specs.append(TaskSpec(name=f"w{i}", depends=(((10 + i), DepMode.OUT),),
                                      flops=2000.0))
            specs.append(TaskSpec(
                name="recv", depends=((0, DepMode.OUT),),
                comm=CommSpec(CommKind.IRECV, 64, peer=peer, tag=0),
            ))
            specs.append(TaskSpec(
                name="send", depends=((1, DepMode.OUT),),
                comm=CommSpec(CommKind.ISEND, 64, peer=peer, tag=0),
            ))
            return Program.from_template(specs, 2)

        res = Cluster(2).run(
            [prog(0), prog(1)],
            [cfg(throttle=ThrottleConfig(total_cap=4), n_threads=2)] * 2,
        )
        assert all(r.n_tasks == 44 for r in res.results)


class TestPriorityInteractions:
    def test_priority_task_scheduled_first(self):
        specs = []
        for i in range(20):
            specs.append(TaskSpec(name=f"bulk{i}", depends=(((10 + i), DepMode.OUT),),
                                  flops=50_000.0))
        specs.append(TaskSpec(name="urgent", depends=((0, DepMode.OUT),),
                              flops=100.0, priority=True))
        prog = Program.from_template(specs, 1)
        r = TaskRuntime(prog, cfg(trace=True, n_threads=2)).run()
        names = r.trace.names()
        cols = r.trace.arrays()
        urgent_start = cols["start"][names.index("urgent")]
        # Despite being submitted last, the priority task starts before
        # most of the bulk (it jumps the spawn queue).
        bulk_starts = sorted(
            cols["start"][i] for i, n in enumerate(names) if n.startswith("bulk")
        )
        assert urgent_start < bulk_starts[len(bulk_starts) // 2]

    def test_priority_preserved_on_replay(self):
        specs = [
            TaskSpec(name="a", depends=((0, DepMode.INOUT),), flops=1000.0),
            TaskSpec(name="pri", depends=((1, DepMode.INOUT),), flops=100.0,
                     priority=True),
        ]
        prog = Program.from_template(specs, 3, persistent_candidate=True)
        rt = TaskRuntime(prog, cfg(opts=OptimizationSet.parse("abcp")))
        rt.run()
        pri = [t for t in rt.graph.tasks if t.name == "pri"][0]
        assert pri.priority


class TestDeviceCombos:
    def test_device_task_with_throttling(self):
        from repro.accel import AcceleratorSpec

        specs = [
            TaskSpec(name=f"k{i}", depends=((i, DepMode.INOUT),),
                     flops=1e6, footprint=((i, 2048),), device=True)
            for i in range(16)
        ]
        prog = Program.from_template(specs, 2)
        rc = cfg(
            accelerator=AcceleratorSpec(n_streams=2),
            throttle=ThrottleConfig(total_cap=4),
            n_threads=2,
        )
        rt = TaskRuntime(prog, rc)
        r = rt.run()
        assert r.n_tasks == 32
        assert rt.accelerator.stats.kernels == 32
