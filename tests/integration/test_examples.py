"""The example scripts must stay runnable (documentation that executes)."""

import importlib
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    sys.path.insert(0, str(EXAMPLES))
    try:
        mod = importlib.import_module(name)
        mod.main()
    finally:
        sys.path.remove(str(EXAMPLES))
        sys.modules.pop(name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "optimizations" in out
        assert "edges materialized" in out

    def test_numeric_validation(self, capsys):
        out = run_example("numeric_validation", capsys)
        assert "bitwise equal = True" in out
        assert "L L^T == A -> True" in out

    def test_persistent_graph(self, capsys):
        out = run_example("persistent_graph", capsys)
        assert "speedup" in out
        assert "caught:" in out
