"""Property test: the persistent runtime is sequentially consistent over
multiple iterations of random programs.

Extends the single-iteration shadow-memory test to the replay path: the
same random task list repeated N times (the PTSG premise) must observe,
iteration after iteration, exactly the dataflow of the sequential
submission order — including cross-iteration reads, which the persistent
barrier must protect despite dropping inter-iteration edges.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import OptimizationSet
from repro.core.program import Program, TaskSpec
from repro.core.task import DepMode
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime

N_ADDRS = 3

dep_mode = st.sampled_from(
    [DepMode.IN, DepMode.OUT, DepMode.INOUT, DepMode.INOUTSET]
)
task_deps = st.lists(
    st.tuples(st.integers(0, N_ADDRS - 1), dep_mode),
    min_size=1,
    max_size=3,
    unique_by=lambda d: d[0],
)
program_shape = st.lists(task_deps, min_size=1, max_size=10)


def build_iterated_program(all_deps, iterations):
    """Shadow-memory program whose expectations span all iterations."""
    shadow: dict[int, set[int]] = {}
    ioset_open: dict[int, bool] = {}
    failures: list[str] = []

    # Sequential expectations across the full unrolled run.  Task instance
    # (it, tid) is identified by its global index.
    exp_shadow: dict[int, frozenset] = {}
    exp_open: dict[int, bool] = {}
    expectations: list[dict[int, frozenset]] = []
    for it in range(iterations):
        for tid, deps in enumerate(all_deps):
            gid = it * len(all_deps) + tid
            exp: dict[int, frozenset] = {}
            for addr, mode in deps:
                if mode == DepMode.IN:
                    exp[addr] = exp_shadow.get(addr, frozenset())
                    exp_open[addr] = False
                elif mode == DepMode.INOUTSET:
                    if exp_open.get(addr):
                        exp_shadow[addr] = exp_shadow.get(addr, frozenset()) | {gid}
                    else:
                        exp_shadow[addr] = frozenset({gid})
                        exp_open[addr] = True
                else:
                    exp_shadow[addr] = frozenset({gid})
                    exp_open[addr] = False
            expectations.append(exp)

    def make_iteration_specs(it):
        specs = []
        for tid, deps in enumerate(all_deps):
            gid = it * len(all_deps) + tid

            def body(gid=gid, deps=deps):
                for addr, mode in deps:
                    if mode == DepMode.IN:
                        got = frozenset(shadow.get(addr, set()))
                        want = expectations[gid][addr]
                        if got != want:
                            failures.append(
                                f"instance {gid} read {addr}: got {sorted(got)}, "
                                f"want {sorted(want)}"
                            )
                        ioset_open[addr] = False
                    elif mode == DepMode.INOUTSET:
                        if ioset_open.get(addr):
                            shadow.setdefault(addr, set()).add(gid)
                        else:
                            shadow[addr] = {gid}
                            ioset_open[addr] = True
                    else:
                        shadow[addr] = {gid}
                        ioset_open[addr] = False

            specs.append(TaskSpec(name=f"t{tid}", depends=tuple(deps), body=body))
        return specs

    from repro.core.program import IterationSpec

    prog = Program(
        [IterationSpec(index=it, tasks=make_iteration_specs(it))
         for it in range(iterations)],
        persistent_candidate=True,
    )
    return prog, failures


class TestPersistentSequentialConsistency:
    @settings(max_examples=40, deadline=None)
    @given(
        shape=program_shape,
        iterations=st.integers(2, 4),
        threads=st.integers(1, 4),
    )
    def test_persistent_replay_consistent(self, shape, iterations, threads):
        prog, failures = build_iterated_program(shape, iterations)
        cfg = RuntimeConfig(
            machine=tiny_test_machine(4),
            n_threads=threads,
            opts=OptimizationSet.parse("abcp"),
            execute_bodies=True,
        )
        r = TaskRuntime(prog, cfg).run()
        assert r.n_tasks == len(shape) * iterations
        assert failures == [], failures

    @settings(max_examples=25, deadline=None)
    @given(shape=program_shape, iterations=st.integers(2, 3))
    def test_non_persistent_multi_iteration_consistent(self, shape, iterations):
        prog, failures = build_iterated_program(shape, iterations)
        cfg = RuntimeConfig(
            machine=tiny_test_machine(4),
            opts=OptimizationSet.parse("bc"),
            execute_bodies=True,
        )
        TaskRuntime(prog, cfg).run()
        assert failures == [], failures
