"""Property-based tests of the substrates: MPI matching, LRU cache,
persistent-replay equivalence."""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.memory.cache import LRUCache
from repro.mpi.comm import Communicator
from repro.mpi.network import NetworkSpec
from repro.runtime.engine import EventQueue


class TestCommProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        msgs=st.lists(
            st.tuples(
                st.integers(0, 2),          # tag
                st.integers(1, 200_000),    # nbytes (spans eager/rendezvous)
                st.floats(0.0, 1e-3),       # send post delay
                st.floats(0.0, 1e-3),       # recv post delay
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_all_messages_match_and_complete(self, msgs):
        engine = EventQueue()
        comm = Communicator(engine, NetworkSpec(eager_threshold=64 * 1024), 2)
        reqs = []
        for tag, nbytes, ts, tr in msgs:
            engine.push(ts, lambda t=tag, n=nbytes: reqs.append(comm.isend(0, 1, t, n)))
            engine.push(tr, lambda t=tag, n=nbytes: reqs.append(comm.irecv(1, 0, t, n)))
        engine.run()
        comm.assert_quiescent()
        for r in reqs:
            assert r.done
            # Completion never precedes posting.
            assert r.complete_time >= r.post_time - 1e-15

    @settings(max_examples=30, deadline=None)
    @given(
        joins=st.lists(st.floats(0.0, 1e-3), min_size=2, max_size=8),
    )
    def test_allreduce_completion_gated_by_last(self, joins):
        n = len(joins)
        engine = EventQueue()
        comm = Communicator(engine, NetworkSpec(), n)
        reqs = []
        for rank, t in enumerate(joins):
            engine.push(t, lambda r=rank: reqs.append(comm.iallreduce(r, 8)))
        engine.run()
        times = {r.complete_time for r in reqs}
        assert len(times) == 1
        assert times.pop() >= max(joins)


class _RefLRU:
    """Reference LRU model to check the production implementation against."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.entries = OrderedDict()

    def used(self):
        return sum(self.entries.values())

    def touch(self, k):
        if k in self.entries:
            self.entries.move_to_end(k)
            return True
        return False

    def insert(self, k, n):
        self.entries.pop(k, None)
        if n > self.capacity:
            return
        while self.used() + n > self.capacity and self.entries:
            self.entries.popitem(last=False)
        self.entries[k] = n


class TestLRUAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["touch", "insert", "invalidate"]),
                st.integers(0, 6),            # chunk id
                st.integers(0, 600),          # bytes
            ),
            max_size=60,
        )
    )
    def test_matches_reference_model(self, ops):
        real = LRUCache(1000)
        ref = _RefLRU(1000)
        for op, k, n in ops:
            if op == "touch":
                assert real.touch(k) == ref.touch(k)
            elif op == "insert":
                real.insert(k, n)
                ref.insert(k, n)
            else:
                real.invalidate(k)
                ref.entries.pop(k, None)
            assert real.used_bytes == ref.used()
            assert list(real.chunks()) == list(ref.entries)
            assert real.used_bytes <= 1000


class TestPersistentReplayEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        width=st.integers(1, 6),
        iterations=st.integers(2, 5),
        seed=st.integers(0, 10_000),
    )
    def test_numeric_equality_persistent_vs_not(self, width, iterations, seed):
        """Running N iterations with the persistent graph must produce the
        same numbers as without it — the extension is purely a runtime
        caching optimization."""
        from repro.apps.hpcg import NumericCG, laplacian_27pt
        from repro.core import OptimizationSet
        from repro.memory import tiny_test_machine
        from repro.runtime import RuntimeConfig, TaskRuntime

        a = laplacian_27pt(4, 4, 4)
        b = np.random.default_rng(seed).normal(size=a.shape[0])
        results = {}
        for opts in ("abc", "abcp"):
            cg = NumericCG(a, b, n_blocks=width)
            cfg = RuntimeConfig(
                machine=tiny_test_machine(4),
                opts=OptimizationSet.parse(opts),
                execute_bodies=True,
            )
            TaskRuntime(cg.build_program(iterations), cfg).run()
            results[opts] = cg.st.x.copy()
        assert np.array_equal(results["abc"], results["abcp"])
