"""Property: edge accounting identities hold for any program/optimization.

For any discovery run, every resolved precedence constraint lands in
exactly one bucket — created, pruned, or duplicate-skipped — and the npred
sum matches the created in-edge count (with persistent pre-satisfied edges
accounted separately)."""

from hypothesis import given, settings, strategies as st

from repro.core import OptimizationSet
from repro.core.program import IterationSpec, Program, TaskSpec
from repro.core.task import DepMode
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime

dep_mode = st.sampled_from(
    [DepMode.IN, DepMode.OUT, DepMode.INOUT, DepMode.INOUTSET]
)
task_deps = st.lists(
    st.tuples(st.integers(0, 3), dep_mode),
    min_size=1, max_size=4, unique_by=lambda d: d[0],
)
program_shape = st.lists(task_deps, min_size=1, max_size=20)


def discover(shape, opts, persistent=False):
    specs = [TaskSpec(name=f"t{i}", depends=tuple(d)) for i, d in enumerate(shape)]
    prog = Program(
        [IterationSpec(index=0, tasks=specs)],
        persistent_candidate=persistent,
    )
    rt = TaskRuntime(
        prog,
        RuntimeConfig(
            machine=tiny_test_machine(2),
            opts=OptimizationSet.parse(opts),
            non_overlapped=not persistent,
        ),
    )
    rt.run()
    return rt


class TestEdgeAccounting:
    @settings(max_examples=60, deadline=None)
    @given(shape=program_shape, opts=st.sampled_from(["", "b", "c", "bc", "abc"]))
    def test_npred_initial_matches_in_edges(self, shape, opts):
        rt = discover(shape, opts)
        in_edges = {t.tid: 0 for t in rt.graph.tasks}
        for pred, succ in rt.graph.iter_edges():
            in_edges[succ.tid] += 1
        for t in rt.graph.tasks:
            if t.is_stub:
                continue
            # Non-overlapped: nothing completes during discovery, so
            # npred_initial must equal the materialized in-edges exactly.
            assert t.npred_initial == in_edges[t.tid]

    @settings(max_examples=40, deadline=None)
    @given(shape=program_shape, opts=st.sampled_from(["", "b", "c", "bc"]))
    def test_successor_list_lengths_match_created(self, shape, opts):
        rt = discover(shape, opts)
        total_out = sum(len(t.successors) for t in rt.graph.tasks)
        assert total_out == rt.graph.stats.created

    @settings(max_examples=40, deadline=None)
    @given(shape=program_shape)
    def test_dedup_only_removes_duplicates(self, shape):
        """(b) must not change the set of distinct edges, only multiplicity."""
        rt_nb = discover(shape, "")
        rt_b = discover(shape, "b")
        edges_nb = {(p.tid, s.tid) for p, s in rt_nb.graph.iter_edges()}
        edges_b = {(p.tid, s.tid) for p, s in rt_b.graph.iter_edges()}
        assert edges_nb == edges_b
        assert rt_b.graph.stats.created + rt_b.graph.stats.duplicates_skipped \
            == rt_nb.graph.stats.created

    @settings(max_examples=40, deadline=None)
    @given(shape=program_shape)
    def test_persistent_discovery_never_prunes(self, shape):
        rt = discover(shape, "p", persistent=True)
        assert rt.graph.stats.pruned == 0
