"""Integration tests: the paper's qualitative results at miniature scale.

Each test is a miniature of one experiment and asserts the paper's
*conclusion* (who wins, what bounds what), not absolute numbers.  The full
experiments live in ``benchmarks/``.
"""

from dataclasses import asdict, replace

import numpy as np
import pytest

from repro.analysis.calibration import scaled_mpc, scaled_skylake
from repro.analysis.sweep import run_spec_sweep
from repro.apps.lulesh import LuleshConfig, build_for_program, build_task_program
from repro.campaign.runner import run_experiment_cluster
from repro.campaign.spec import ExperimentSpec
from repro.cluster import Cluster, RankGrid
from repro.profiler import comm_metrics, gantt_of
from repro.runtime import TaskRuntime


# Workset at s=32 is ~8 MB, comfortably above the scaled 4 MB L3, so the
# DRAM-vs-cache effects the paper measures are visible.
S, ITERS, FPI = 32, 4, 25.0


def lulesh_prog(tpl, opt_a=True, **kw):
    return build_task_program(
        LuleshConfig(s=S, iterations=ITERS, tpl=tpl, flops_per_item=FPI), opt_a=opt_a, **kw
    )


def mpc(opts="abc", **kw):
    return scaled_mpc(scaled_skylake(8), opts=opts, n_threads=8, **kw)


@pytest.fixture(scope="module")
def sweep_abc():
    base = ExperimentSpec(
        app="lulesh",
        config=mpc("abc"),
        params={"s": S, "iterations": ITERS, "tpl": 2, "flops_per_item": FPI},
    )
    return run_spec_sweep(base, [2, 4, 8, 16, 32, 64, 128])


class TestFig1DiscoveryBound:
    def test_discovery_grows_with_tpl(self, sweep_abc):
        disc = sweep_abc.series("discovery")
        assert disc[-1] > 3 * disc[0]

    def test_becomes_discovery_bound(self, sweep_abc):
        assert sweep_abc.crossover_tpl() is not None

    def test_total_is_v_shaped(self, sweep_abc):
        totals = sweep_abc.series("total")
        best = int(np.argmin(totals))
        assert 0 < best < len(totals) - 1

    def test_finest_point_discovery_dominates(self, sweep_abc):
        p = sweep_abc.points[-1]
        assert p.discovery >= 0.9 * p.total


class TestFig2CacheBehaviour:
    def test_idle_high_at_coarse_grain(self, sweep_abc):
        coarse, mid = sweep_abc.points[0], sweep_abc.best("total")
        assert coarse.idle_avg > mid.idle_avg

    def test_dram_traffic_drops_with_refinement(self, sweep_abc):
        """Fig 2e: L3 misses fall from coarse to best grain (reuse)."""
        coarse = sweep_abc.points[0].result.mem.bytes_dram
        best = sweep_abc.best("total").result.mem.bytes_dram
        assert best < coarse

    def test_discovery_bound_degrades_cache_use(self, sweep_abc):
        """Breadth-first fallback at the finest grain raises DRAM traffic
        back up (Fig 2e right side)."""
        best = sweep_abc.best("total").result.mem.bytes_dram
        finest = sweep_abc.points[-1].result.mem.bytes_dram
        assert finest > best


class TestTable1NonOverlapped:
    def test_full_tdg_knowledge_reduces_misses_and_idle(self):
        # The paper runs Table 1 at the *finest* grain (4,608 TPL), where
        # normal execution is discovery-bound — that is where full TDG
        # knowledge recovers the depth-first locality.
        tpl = 128
        prog = lulesh_prog(tpl)
        r_norm = TaskRuntime(prog, mpc("abc")).run()
        r_non = TaskRuntime(prog, mpc("abc", non_overlapped=True)).run()
        # §2.3.4: non-overlapped has less idle + fewer L3 misses...
        assert r_non.mem.bytes_dram < r_norm.mem.bytes_dram
        # ...but a slower total because discovery is serialized first.
        assert r_non.makespan > r_norm.makespan


class TestTable2Optimizations:
    def test_abc_discovery_faster_than_none(self):
        prog_none = lulesh_prog(32, opt_a=False)
        prog_a = lulesh_prog(32, opt_a=True)
        d_none = TaskRuntime(prog_none, mpc("")).run().discovery_busy
        d_abc = TaskRuntime(prog_a, mpc("abc")).run().discovery_busy
        assert d_abc < d_none

    def test_persistence_slashes_discovery(self):
        prog = lulesh_prog(32)
        d_abc = TaskRuntime(prog, mpc("abc")).run().discovery_busy
        d_p = TaskRuntime(prog, mpc("abcp")).run().discovery_busy
        assert d_abc / d_p > 4.0  # paper: 15x at 16 iterations

    def test_first_persistent_iteration_dominates_its_discovery(self):
        # Replay iterations cost ~nothing compared to iteration 0, so the
        # 4-iteration persistent discovery barely exceeds a 1-iteration one.
        prog_1 = build_task_program(
            LuleshConfig(s=S, iterations=1, tpl=32, flops_per_item=FPI), opt_a=True
        )
        prog_4 = lulesh_prog(32)
        d1 = TaskRuntime(prog_1, mpc("abcp")).run().discovery_busy
        d4 = TaskRuntime(prog_4, mpc("abcp")).run().discovery_busy
        assert d4 < 1.5 * d1


class TestFig6TaskVsParallelFor:
    def test_optimized_tasks_beat_parallel_for(self, sweep_abc):
        cfg = LuleshConfig(s=S, iterations=ITERS, tpl=4, flops_per_item=FPI)
        res = Cluster(1).run([build_for_program(cfg)], [mpc()])
        t_for = res.results[0].makespan
        t_task = sweep_abc.best("total").total
        assert t_task < t_for

    def test_work_time_improves_over_parallel_for(self, sweep_abc):
        cfg = LuleshConfig(s=S, iterations=ITERS, tpl=4, flops_per_item=FPI)
        res = Cluster(1).run([build_for_program(cfg)], [mpc()])
        w_for = res.results[0].work_avg
        w_task = sweep_abc.best("total").work_avg
        assert w_task < w_for


class TestFig7Fig8Distributed:
    @pytest.fixture(scope="class")
    def cluster_runs(self):
        from repro.analysis.calibration import scaled_epyc, scaled_network

        grid = RankGrid.cubic(8)
        cfg = LuleshConfig(s=16, iterations=4, tpl=16, flops_per_item=FPI)
        out = {}
        for label, opts in (("opt", "abcp"), ("noopt", "")):
            rc = scaled_mpc(scaled_epyc(), opts=opts, n_threads=4)
            spec = ExperimentSpec(
                app="lulesh",
                config=replace(rc, trace=True),
                params=asdict(cfg),
                ranks=grid.n_ranks,
                seed=rc.seed,
                network=scaled_network(),
            )
            out[label] = run_experiment_cluster(spec, grid=grid)
        return out

    def test_all_ranks_complete(self, cluster_runs):
        for res in cluster_runs.values():
            assert all(r.n_tasks > 0 for r in res.results)

    def test_optimized_overlap_not_worse(self, cluster_runs):
        def ratio(res):
            pr = [r for r in res.results if r.extra.get("profiled")][0]
            return comm_metrics(pr.comm, pr.trace, pr.n_threads).overlap_ratio

        assert ratio(cluster_runs["opt"]) >= ratio(cluster_runs["noopt"]) - 0.15

    def test_gantt_shows_persistent_barrier(self, cluster_runs):
        pr = [r for r in cluster_runs["opt"].results if r.extra.get("profiled")][0]
        g = gantt_of(pr.trace, pr.n_threads, width=200)
        assert not g.iterations_interleaved()


class TestHpcgShape:
    def test_low_overlap_potential(self):
        """§4.3: little work is available concurrent with the dots'
        allreduces — overlap ratio stays low."""
        from repro.analysis.calibration import scaled_network
        from repro.apps.hpcg import HpcgConfig

        grid = RankGrid(2, 1, 1)
        cfg = HpcgConfig(n_rows=4096, iterations=4, tpl=16, spmv_sub=4)
        rc = scaled_mpc(opts="abc", n_threads=4)
        spec = ExperimentSpec(
            app="hpcg",
            config=replace(rc, trace=True),
            params=asdict(cfg),
            ranks=grid.n_ranks,
            seed=rc.seed,
            network=scaled_network(),
        )
        res = run_experiment_cluster(spec, grid=grid)
        pr = [r for r in res.results if r.extra.get("profiled")][0]
        m = comm_metrics(pr.comm, pr.trace, pr.n_threads)
        assert m.overlap_ratio < 0.5


class TestCholeskyShape:
    def test_discovery_negligible_fraction(self):
        """§4.4: coarse regular tasks — discovery <2% of total."""
        from repro.apps.cholesky import CholeskyConfig, build_task_programs

        c = CholeskyConfig(n=1024, b=128, iterations=2)
        prog = build_task_programs(c)[0]
        r = TaskRuntime(prog, scaled_mpc(scaled_skylake(8), opts="abc", n_threads=8)).run()
        assert r.discovery_busy < 0.05 * r.makespan
