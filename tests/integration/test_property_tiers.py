"""Property-based tests: the fidelity ladder orders correctly.

For random small (footprint-free) task programs the ladder's defining
inequalities must hold within tolerance:

    analytic.T_inf <= replay(N=inf) <= replay(N) ~= des(N)

and the analytic certified bracket ``makespan_lower <= x <=
makespan_upper`` must contain both the replay and the DES makespan.
Replay is a model of DES, not a bound on it, so the last link is an
agreement check (the cross-check tolerance), not an ordering.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import OptimizationSet
from repro.core.compiled import compile_program
from repro.core.program import IterationSpec, Program, TaskSpec
from repro.core.task import DepMode
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig
from repro.sim.tiers import ReplaySimulator, simulate

N_ADDRS = 4
#: Replay-vs-DES agreement on adversarial random graphs.  The campaign
#: cross-check holds the real workloads to 8%; random programs this
#: small are dominated by single-task scheduling accidents, so the
#: property keeps a wider guard band while still catching model breaks.
AGREEMENT = 0.25
EPS = 1e-9

dep_mode = st.sampled_from(
    [DepMode.IN, DepMode.OUT, DepMode.INOUT, DepMode.INOUTSET]
)
task_deps = st.lists(
    st.tuples(st.integers(0, N_ADDRS - 1), dep_mode),
    min_size=1,
    max_size=4,
    unique_by=lambda d: d[0],
)
program_shape = st.lists(task_deps, min_size=1, max_size=20)


def build_program(shape) -> Program:
    specs = [
        TaskSpec(name=f"t{i}", depends=tuple(deps), flops=2000.0 + 100.0 * i)
        for i, deps in enumerate(shape)
    ]
    return Program([IterationSpec(index=0, tasks=specs)])


class TestLadderOrdering:
    @settings(max_examples=40, deadline=None)
    @given(
        shape=program_shape,
        opts=st.sampled_from(["", "a", "abc"]),
        threads=st.integers(1, 4),
        sched=st.sampled_from(["lifo-df", "fifo-bf"]),
    )
    def test_span_then_workers_then_des(self, shape, opts, threads, sched):
        prog = build_program(shape)
        cfg = RuntimeConfig(
            machine=tiny_test_machine(4),
            n_threads=threads,
            opts=OptimizationSet.parse(opts),
            scheduler=sched,
        )
        art = compile_program(prog, cfg.opts, costs=cfg.discovery)

        bounds = simulate(art, cfg, fidelity="analytic").extra["bounds"]
        ideal = ReplaySimulator(workers_override=4096).simulate(art, cfg)
        replay = simulate(art, cfg, fidelity="replay")
        des = simulate(art, cfg, fidelity="des", program=prog)

        # T_inf <= replay(N=inf): no schedule beats the critical path.
        assert bounds["t_inf"] <= ideal.makespan + EPS
        # replay(N=inf) <= replay(N): workers never hurt a list schedule
        # of frozen durations fed by the same producer clock.
        assert ideal.makespan <= replay.makespan + EPS
        # replay(N) ~= des(N): agreement within the guard band.
        assert abs(replay.makespan - des.makespan) <= AGREEMENT * des.makespan
        # The certified bracket contains both event-accurate makespans.
        lo, hi = bounds["makespan_lower"], bounds["makespan_upper"]
        for x in (replay.makespan, des.makespan):
            assert lo <= x * (1 + EPS)
            assert x <= hi * (1 + EPS)
        # All tiers agree on the task count.
        assert replay.n_tasks == des.n_tasks == len(shape)

    @settings(max_examples=25, deadline=None)
    @given(shape=program_shape, threads=st.integers(1, 4))
    def test_non_overlapped_ordering(self, shape, threads):
        prog = build_program(shape)
        cfg = RuntimeConfig(
            machine=tiny_test_machine(4),
            n_threads=threads,
            opts=OptimizationSet.parse("abc"),
            non_overlapped=True,
        )
        art = compile_program(prog, cfg.opts, costs=cfg.discovery)
        bounds = simulate(art, cfg, fidelity="analytic").extra["bounds"]
        replay = simulate(art, cfg, fidelity="replay")
        des = simulate(art, cfg, fidelity="des", program=prog)
        assert abs(replay.makespan - des.makespan) <= AGREEMENT * des.makespan
        lo, hi = bounds["makespan_lower"], bounds["makespan_upper"]
        for x in (replay.makespan, des.makespan):
            assert lo <= x * (1 + EPS)
            assert x <= hi * (1 + EPS)

    @settings(max_examples=25, deadline=None)
    @given(shape=program_shape, iters=st.integers(2, 4))
    def test_persistent_ordering(self, shape, iters):
        prog = Program.from_template(
            [
                TaskSpec(name=f"t{i}", depends=tuple(deps), flops=2000.0)
                for i, deps in enumerate(shape)
            ],
            iters,
        )
        cfg = RuntimeConfig(
            machine=tiny_test_machine(4),
            n_threads=4,
            opts=OptimizationSet.parse("abcp"),
        )
        art = compile_program(prog, cfg.opts, costs=cfg.discovery)
        bounds = simulate(art, cfg, fidelity="analytic").extra["bounds"]
        assert bounds["rounds"] == iters
        replay = simulate(art, cfg, fidelity="replay")
        des = simulate(art, cfg, fidelity="des", program=prog)
        assert replay.n_tasks == des.n_tasks == len(shape) * iters
        assert abs(replay.makespan - des.makespan) <= AGREEMENT * des.makespan
        lo, hi = bounds["makespan_lower"], bounds["makespan_upper"]
        for x in (replay.makespan, des.makespan):
            assert lo <= x * (1 + EPS)
            assert x <= hi * (1 + EPS)
