"""Determinism: identical configs must produce bit-identical simulations.

EXPERIMENTS.md promises reruns reproduce every number exactly; these tests
hold the simulator to it (the event queue is tie-broken by sequence number
and all randomness flows through seeded generators).
"""

from dataclasses import asdict, replace

import numpy as np

from repro.analysis.calibration import (
    scaled_epyc,
    scaled_mpc,
    scaled_network,
    scaled_skylake,
)
from repro.apps.lulesh import LuleshConfig, build_task_program
from repro.campaign.runner import run_experiment_cluster
from repro.campaign.spec import ExperimentSpec
from repro.cluster import RankGrid
from repro.runtime import TaskRuntime


def single_rank_run():
    cfg = LuleshConfig(s=16, iterations=3, tpl=16, flops_per_item=25.0)
    prog = build_task_program(cfg, opt_a=True)
    return TaskRuntime(prog, scaled_mpc(scaled_skylake(8), opts="abcp",
                                        n_threads=8, trace=True)).run()


class TestDeterminism:
    def test_single_rank_bitwise_repeatable(self):
        a, b = single_rank_run(), single_rank_run()
        assert a.makespan == b.makespan
        assert a.discovery_busy == b.discovery_busy
        assert np.array_equal(a.work, b.work)
        assert np.array_equal(a.overhead, b.overhead)
        assert a.edges.created == b.edges.created
        assert a.mem.l3_misses == b.mem.l3_misses
        ca, cb = a.trace.arrays(), b.trace.arrays()
        for k in ca:
            assert np.array_equal(ca[k], cb[k]), k

    def test_cluster_bitwise_repeatable(self):
        def run():
            cfg = scaled_mpc(scaled_epyc(), opts="abc", n_threads=4)
            spec = ExperimentSpec(
                app="lulesh",
                config=replace(cfg, trace=True),
                params=asdict(
                    LuleshConfig(s=12, iterations=2, tpl=8, flops_per_item=25.0)
                ),
                ranks=8,
                seed=cfg.seed,
                network=scaled_network(),
            )
            return run_experiment_cluster(spec, grid=RankGrid.cubic(8))

        a, b = run(), run()
        assert a.makespan == b.makespan
        for ra, rb in zip(a.results, b.results):
            assert ra.makespan == rb.makespan
            assert ra.edges.created == rb.edges.created

    def test_seed_changes_steal_decisions_not_correctness(self):
        from dataclasses import replace

        cfg = LuleshConfig(s=16, iterations=2, tpl=16, flops_per_item=25.0)
        prog = build_task_program(cfg, opt_a=True)
        base = scaled_mpc(scaled_skylake(8), opts="abc", n_threads=8)
        r1 = TaskRuntime(prog, replace(base, seed=1)).run()
        r2 = TaskRuntime(prog, replace(base, seed=2)).run()
        assert r1.n_tasks == r2.n_tasks
        # Timing may differ slightly through steal victims, but stays close.
        assert abs(r1.makespan - r2.makespan) < 0.5 * r1.makespan
