"""Property-based tests: the runtime is sequentially consistent.

For randomly generated dependent-task programs, executing through the
simulated runtime (any scheduler, any thread count, any optimization set)
must observe exactly the dataflow of a sequential execution in submission
order.  Shadow-memory bodies check this:

- an ``out``/``inout`` access replaces the address's writer set with
  {tid};
- an ``inoutset`` access adds tid to the writer set (commutative, so any
  group execution order is fine);
- an ``in`` access snapshots the writer set, which must equal the set a
  sequential walk predicts.

Any missing or misdirected edge reorders a read/write pair and trips the
assertion.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import OptimizationSet
from repro.core.program import IterationSpec, Program, TaskSpec
from repro.core.task import DepMode
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig, TaskRuntime

N_ADDRS = 4

dep_mode = st.sampled_from(
    [DepMode.IN, DepMode.OUT, DepMode.INOUT, DepMode.INOUTSET]
)
task_deps = st.lists(
    st.tuples(st.integers(0, N_ADDRS - 1), dep_mode),
    min_size=1,
    max_size=4,
    unique_by=lambda d: d[0],  # one mode per address per task, like real clauses
)
program_shape = st.lists(task_deps, min_size=1, max_size=24)


def sequential_expectations(all_deps: list[list[tuple[int, DepMode]]]):
    """Predict, per task, the writer set an IN access must observe."""
    shadow: dict[int, frozenset[int]] = {}
    ioset_open: dict[int, bool] = {}
    expectations: list[dict[int, frozenset[int]]] = []
    for tid, deps in enumerate(all_deps):
        exp: dict[int, frozenset[int]] = {}
        for addr, mode in deps:
            if mode == DepMode.IN:
                exp[addr] = shadow.get(addr, frozenset())
                ioset_open[addr] = False
            elif mode == DepMode.INOUTSET:
                if ioset_open.get(addr):
                    shadow[addr] = shadow.get(addr, frozenset()) | {tid}
                else:
                    shadow[addr] = frozenset({tid})
                    ioset_open[addr] = True
            else:
                shadow[addr] = frozenset({tid})
                ioset_open[addr] = False
        expectations.append(exp)
    return expectations


def build_program(all_deps, iterations=1):
    """A program whose bodies maintain and check shadow memory."""
    shadow: dict[int, set[int]] = {}
    ioset_open: dict[int, bool] = {}
    expectations = sequential_expectations(all_deps)
    failures: list[str] = []

    def make_body(tid, deps):
        def body():
            for addr, mode in deps:
                if mode == DepMode.IN:
                    got = frozenset(shadow.get(addr, set()))
                    want = expectations[tid][addr]
                    if got != want:
                        failures.append(
                            f"task {tid} read addr {addr}: got {sorted(got)}, "
                            f"want {sorted(want)}"
                        )
                    ioset_open[addr] = False
                elif mode == DepMode.INOUTSET:
                    if ioset_open.get(addr):
                        shadow.setdefault(addr, set()).add(tid)
                    else:
                        shadow[addr] = {tid}
                        ioset_open[addr] = True
                else:
                    shadow[addr] = {tid}
                    ioset_open[addr] = False

        return body

    specs = [
        TaskSpec(name=f"t{tid}", depends=tuple(deps), body=make_body(tid, deps))
        for tid, deps in enumerate(all_deps)
    ]
    prog = Program([IterationSpec(index=0, tasks=specs)])
    return prog, failures


class TestSequentialConsistency:
    @settings(max_examples=60, deadline=None)
    @given(
        shape=program_shape,
        opts=st.sampled_from(["", "a", "b", "c", "bc", "abc"]),
        threads=st.integers(1, 4),
        sched=st.sampled_from(["lifo-df", "fifo-bf"]),
    )
    def test_random_programs_sequentially_consistent(self, shape, opts, threads, sched):
        prog, failures = build_program(shape)
        cfg = RuntimeConfig(
            machine=tiny_test_machine(4),
            n_threads=threads,
            opts=OptimizationSet.parse(opts),
            scheduler=sched,
            execute_bodies=True,
        )
        r = TaskRuntime(prog, cfg).run()
        assert r.n_tasks == len(shape)
        assert failures == [], failures

    @settings(max_examples=30, deadline=None)
    @given(shape=program_shape, threads=st.integers(1, 4))
    def test_non_overlapped_mode_consistent(self, shape, threads):
        prog, failures = build_program(shape)
        cfg = RuntimeConfig(
            machine=tiny_test_machine(4),
            n_threads=threads,
            non_overlapped=True,
            execute_bodies=True,
        )
        TaskRuntime(prog, cfg).run()
        assert failures == [], failures

    @settings(max_examples=30, deadline=None)
    @given(shape=program_shape)
    def test_throttled_producer_consistent(self, shape):
        prog, failures = build_program(shape)
        from repro.core import ThrottleConfig

        cfg = RuntimeConfig(
            machine=tiny_test_machine(2),
            n_threads=2,
            throttle=ThrottleConfig(total_cap=3),
            execute_bodies=True,
        )
        TaskRuntime(prog, cfg).run()
        assert failures == [], failures


class TestEdgeOrderingInvariant:
    @settings(max_examples=40, deadline=None)
    @given(
        shape=program_shape,
        opts=st.sampled_from(["", "abc"]),
        threads=st.integers(1, 4),
    )
    def test_every_edge_orders_completion_before_start(self, shape, opts, threads):
        specs = [
            TaskSpec(name=f"t{i}", depends=tuple(deps), flops=100.0)
            for i, deps in enumerate(shape)
        ]
        prog = Program([IterationSpec(index=0, tasks=specs)])
        rt = TaskRuntime(
            prog,
            RuntimeConfig(
                machine=tiny_test_machine(4),
                n_threads=threads,
                opts=OptimizationSet.parse(opts),
            ),
        )
        rt.run()
        for pred, succ in rt.graph.iter_edges():
            if succ.is_stub:
                continue
            assert pred.completed_at <= succ.started_at + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(shape=program_shape, opts=st.sampled_from(["", "b", "c", "abc"]))
    def test_graph_always_acyclic(self, shape, opts):
        specs = [
            TaskSpec(name=f"t{i}", depends=tuple(deps)) for i, deps in enumerate(shape)
        ]
        prog = Program([IterationSpec(index=0, tasks=specs)])
        rt = TaskRuntime(
            prog,
            RuntimeConfig(
                machine=tiny_test_machine(2),
                opts=OptimizationSet.parse(opts),
                non_overlapped=True,
            ),
        )
        rt.run()
        rt.graph.validate_acyclic()
