"""Coupled multi-rank simulation tests."""

import pytest

from repro.cluster.cluster import Cluster, run_spmd
from repro.core import ProgramBuilder
from repro.core.program import CommKind, CommSpec
from repro.memory import tiny_test_machine
from repro.runtime import RuntimeConfig


def cfg(**kw):
    kw.setdefault("machine", tiny_test_machine(2))
    return RuntimeConfig(**kw)


def pingpong_program(rank: int, rounds: int = 3):
    """Rank 0 sends, rank 1 receives, then reversed — per round."""
    peer = 1 - rank
    b = ProgramBuilder(f"pingpong-r{rank}")
    for rnd in range(rounds):
        with b.iteration():
            if rank == 0:
                b.task("send", inout=["buf"], flops=100.0,
                       comm=CommSpec(CommKind.ISEND, 256, peer=peer, tag=0))
                b.task("recv", inout=["buf"], flops=100.0,
                       comm=CommSpec(CommKind.IRECV, 256, peer=peer, tag=1))
            else:
                b.task("recv", inout=["buf"], flops=100.0,
                       comm=CommSpec(CommKind.IRECV, 256, peer=peer, tag=0))
                b.task("send", inout=["buf"], flops=100.0,
                       comm=CommSpec(CommKind.ISEND, 256, peer=peer, tag=1))
    return b.build()


class TestCoupledRun:
    def test_pingpong(self):
        cluster = Cluster(2)
        res = cluster.run(
            [pingpong_program(0), pingpong_program(1)],
            [cfg(), cfg()],
        )
        assert res.n_ranks == 2
        assert all(r.n_tasks == 6 for r in res.results)
        assert res.makespan > 0

    def test_allreduce_couples_ranks(self):
        def prog(rank):
            b = ProgramBuilder(f"r{rank}")
            with b.iteration():
                # Rank 1 computes longer before joining the collective.
                b.task("work", out=["x"], flops=1000.0 * (1 + rank * 50))
                b.task("red", inp=["x"], out=["dt"],
                       comm=CommSpec(CommKind.IALLREDUCE, 8))
            return b.build()

        res = run_spmd(prog, lambda r: cfg(), 2)
        c0 = res.results[0].comm[0]
        c1 = res.results[1].comm[0]
        # Both complete at the same instant, gated by the slow rank.
        assert c0.complete_time == pytest.approx(c1.complete_time)
        assert c0.duration > c1.duration  # rank 0 posted earlier, waits more

    def test_mismatched_counts_rejected(self):
        cluster = Cluster(2)
        with pytest.raises(ValueError, match="exactly"):
            cluster.run([pingpong_program(0)], [cfg()])

    def test_unmatched_comm_detected(self):
        def prog(rank):
            b = ProgramBuilder(f"r{rank}")
            with b.iteration():
                if rank == 0:
                    b.task("send", inout=["b"],
                           comm=CommSpec(CommKind.ISEND, 100, peer=1, tag=9))
                else:
                    b.task("noop", inout=["b"], flops=10.0)
            return b.build()

        cluster = Cluster(2)
        with pytest.raises(RuntimeError, match="quiescent"):
            cluster.run([prog(0), prog(1)], [cfg(), cfg()])

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            Cluster(0)


class TestMixedModels:
    def test_task_and_for_ranks_interoperate(self):
        from repro.core.program import CommKind
        from repro.runtime.parallel_for import (
            BlockingCollectiveSpec,
            ForIteration,
            ForProgram,
            LoopSpec,
        )

        b = ProgramBuilder("task-side")
        with b.iteration():
            b.task("w", out=["x"], flops=500.0)
            b.task("red", inp=["x"], out=["d"], comm=CommSpec(CommKind.IALLREDUCE, 8))
        task_prog = b.build()
        for_prog = ForProgram(
            [ForIteration(phases=[LoopSpec("l", 1000.0, 4096), BlockingCollectiveSpec(8)])]
        )
        cluster = Cluster(2)
        res = cluster.run([task_prog, for_prog], [cfg(), cfg()])
        assert res.results[0].comm[0].complete_time == pytest.approx(
            res.results[1].comm[0].complete_time
        )
