"""Static comm manifest: DES-free enumeration of every MPI operation."""

from repro.cluster import CommManifest, static_comm_manifest
from repro.core.program import CommKind, CommSpec, ProgramBuilder
from repro.runtime.parallel_for import (
    BlockingCollectiveSpec,
    ForIteration,
    ForProgram,
    HaloExchangeSpec,
    P2PSpec,
)


def two_rank_task_programs(iterations=2):
    progs = []
    for rank in range(2):
        peer = 1 - rank
        b = ProgramBuilder(f"r{rank}")
        for _ in range(iterations):
            with b.iteration():
                b.task("compute", out=["x"], flops=10.0)
                b.task(
                    "send",
                    inp=["x"],
                    out=["s"],
                    comm=CommSpec(CommKind.ISEND, 128, peer=peer, tag=rank),
                )
                b.task(
                    "recv",
                    out=["r"],
                    comm=CommSpec(CommKind.IRECV, 128, peer=peer, tag=peer),
                )
        progs.append(b.build())
    return progs


class TestTaskProgramWalk:
    def test_submission_order_and_fields(self):
        manifest = static_comm_manifest(two_rank_task_programs())
        assert manifest.n_ranks == 2
        assert len(manifest) == 8  # 2 ranks x 2 iterations x (send+recv)
        r0 = manifest.by_rank(0)
        assert [op.op_index for op in r0] == [0, 1, 2, 3]
        assert [op.kind for op in r0[:2]] == [CommKind.ISEND, CommKind.IRECV]
        assert r0[0].peer == 1 and r0[0].tag == 0 and r0[0].nbytes == 128
        assert r0[0].task == "send"
        assert [op.iteration for op in r0] == [0, 0, 1, 1]
        # Non-comm tasks contribute nothing.
        assert all(op.task != "compute" for op in manifest.ops)

    def test_template_only_takes_first_iteration(self):
        manifest = static_comm_manifest(
            two_rank_task_programs(iterations=3), template_only=True
        )
        assert len(manifest.by_rank(0)) == 2
        assert all(op.iteration == 0 for op in manifest.ops)

    def test_to_dict_schema(self):
        d = static_comm_manifest(two_rank_task_programs()).to_dict()
        assert d["schema"] == "repro.cluster.comm_manifest"
        assert d["version"] == 1
        assert d["ops"][0]["kind"] == "ISEND"


class TestForProgramWalk:
    def test_halo_and_collective_phases(self):
        halo = HaloExchangeSpec(
            ops=(
                P2PSpec(CommKind.ISEND, peer=1, tag=5, nbytes=4096),
                P2PSpec(CommKind.IRECV, peer=1, tag=6, nbytes=4096),
            )
        )
        prog = ForProgram(
            [ForIteration(phases=[halo, BlockingCollectiveSpec(nbytes=8)])],
            name="bsp",
        )
        manifest = static_comm_manifest([prog])
        assert isinstance(manifest, CommManifest)
        kinds = [op.kind for op in manifest.ops]
        assert kinds == [CommKind.ISEND, CommKind.IRECV, CommKind.IALLREDUCE]
        assert manifest.ops[0].task == "halo-exchange"
        assert manifest.ops[2].peer == -1

    def test_mixed_program_kinds(self):
        task_prog = two_rank_task_programs(iterations=1)[0]
        bsp = ForProgram(
            [ForIteration(phases=[BlockingCollectiveSpec(nbytes=8)])]
        )
        manifest = static_comm_manifest([task_prog, bsp])
        assert len(manifest.by_rank(0)) == 2
        assert [op.kind for op in manifest.by_rank(1)] == [CommKind.IALLREDUCE]
