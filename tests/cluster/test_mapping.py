"""Unit tests for rank grids and neighbor topology."""

import pytest

from repro.cluster.mapping import Neighbor, RankGrid


class TestGrid:
    def test_cubic(self):
        g = RankGrid.cubic(27)
        assert (g.px, g.py, g.pz) == (3, 3, 3)
        assert g.n_ranks == 27

    def test_cubic_rejects_non_cube(self):
        with pytest.raises(ValueError, match="perfect cube"):
            RankGrid.cubic(10)

    def test_coords_roundtrip(self):
        g = RankGrid(4, 3, 2)
        for r in range(g.n_ranks):
            assert g.rank_of(*g.coords(r)) == r

    def test_coords_bounds(self):
        g = RankGrid(2, 2, 2)
        with pytest.raises(ValueError):
            g.coords(8)
        with pytest.raises(ValueError):
            g.rank_of(2, 0, 0)

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            RankGrid(0, 1, 1)


class TestNeighbors:
    def test_interior_has_26(self):
        g = RankGrid.cubic(27)
        center = g.rank_of(1, 1, 1)
        assert len(g.neighbors(center)) == 26

    def test_corner_has_7(self):
        g = RankGrid.cubic(27)
        assert len(g.neighbors(g.rank_of(0, 0, 0))) == 7

    def test_kind_classification(self):
        g = RankGrid.cubic(27)
        kinds = [n.kind for n in g.neighbors(g.rank_of(1, 1, 1))]
        assert kinds.count("face") == 6
        assert kinds.count("edge") == 12
        assert kinds.count("corner") == 8

    def test_symmetry(self):
        """If q is p's neighbor, p is q's neighbor with opposite offset."""
        g = RankGrid(3, 2, 2)
        for r in range(g.n_ranks):
            for nb in g.neighbors(r):
                back = [m for m in g.neighbors(nb.rank) if m.rank == r]
                assert len(back) == 1
                assert back[0].offset == tuple(-d for d in nb.offset)

    def test_interior_rank_selection(self):
        g = RankGrid.cubic(27)
        assert len(g.neighbors(g.interior_rank())) == 26

    def test_single_rank_grid(self):
        g = RankGrid(1, 1, 1)
        assert g.neighbors(0) == []

    def test_neighbor_kind_values(self):
        assert Neighbor(0, (1, 0, 0)).kind == "face"
        assert Neighbor(0, (1, 1, 0)).kind == "edge"
        assert Neighbor(0, (1, 1, -1)).kind == "corner"
