"""Unit tests for the simulated communicator (matching + protocols)."""

import pytest

from repro.mpi.comm import Communicator
from repro.mpi.network import NetworkSpec
from repro.runtime.engine import EventQueue


def make(n_ranks=2, **net_kw):
    net_kw.setdefault("latency", 1e-6)
    net_kw.setdefault("bandwidth", 1e9)
    net_kw.setdefault("eager_threshold", 1024)
    engine = EventQueue()
    comm = Communicator(engine, NetworkSpec(**net_kw), n_ranks)
    return engine, comm


class TestEager:
    def test_send_completes_without_recv(self):
        engine, comm = make()
        s = comm.isend(0, 1, tag=0, nbytes=100)
        engine.run()
        assert s.done
        # Buffered send: completes after injection only.
        assert s.complete_time == pytest.approx(100 / 1e9)

    def test_recv_after_arrival(self):
        engine, comm = make()
        s = comm.isend(0, 1, tag=0, nbytes=100)
        r = comm.irecv(1, 0, tag=0, nbytes=100)
        engine.run()
        assert r.done
        assert r.complete_time == pytest.approx(1e-6 + 100 / 1e9)

    def test_late_recv_completes_at_post(self):
        engine, comm = make()
        s = comm.isend(0, 1, tag=0, nbytes=100)
        engine.run()
        # Post the receive "later" — after the payload has arrived.
        engine.push(1.0, lambda: comm.irecv(1, 0, tag=0, nbytes=100))
        engine.run()
        r = comm.requests[-1]
        assert r.complete_time == pytest.approx(1.0)


class TestRendezvous:
    def test_send_waits_for_recv(self):
        engine, comm = make()
        nbytes = 1_000_000  # above threshold
        s = comm.isend(0, 1, tag=0, nbytes=nbytes)
        engine.push(0.5, lambda: comm.irecv(1, 0, tag=0, nbytes=nbytes))
        engine.run()
        assert s.done
        expected = 0.5 + 1e-6 + 1e-6 + nbytes / 1e9
        assert s.complete_time == pytest.approx(expected)
        r = comm.requests[-1]
        assert r.complete_time == pytest.approx(expected)

    def test_rendezvous_slower_than_eager_for_same_lateness(self):
        engine, comm = make()
        s_e = comm.isend(0, 1, tag=0, nbytes=512)
        s_r = comm.isend(0, 1, tag=1, nbytes=2048)
        comm.irecv(1, 0, tag=0, nbytes=512)
        comm.irecv(1, 0, tag=1, nbytes=2048)
        engine.run()
        assert s_e.complete_time < s_r.complete_time


class TestMatching:
    def test_fifo_matching_same_key(self):
        engine, comm = make()
        s1 = comm.isend(0, 1, tag=0, nbytes=10)
        s2 = comm.isend(0, 1, tag=0, nbytes=20)
        r1 = comm.irecv(1, 0, tag=0, nbytes=10)
        r2 = comm.irecv(1, 0, tag=0, nbytes=20)
        engine.run()
        assert r1.done and r2.done

    def test_tag_separation(self):
        engine, comm = make()
        comm.isend(0, 1, tag=5, nbytes=10)
        r = comm.irecv(1, 0, tag=6, nbytes=10)
        engine.run()
        assert not r.done
        assert comm.unmatched()["recvs"] == 1
        assert comm.unmatched()["sends"] == 1

    def test_recv_first_then_send(self):
        engine, comm = make()
        r = comm.irecv(1, 0, tag=0, nbytes=10)
        s = comm.isend(0, 1, tag=0, nbytes=10)
        engine.run()
        assert r.done and s.done

    def test_assert_quiescent(self):
        engine, comm = make()
        comm.isend(0, 1, tag=0, nbytes=10)
        engine.run()
        with pytest.raises(RuntimeError, match="not quiescent"):
            comm.assert_quiescent()

    def test_rank_bounds_checked(self):
        engine, comm = make()
        with pytest.raises(ValueError):
            comm.isend(0, 5, tag=0, nbytes=10)
        with pytest.raises(ValueError):
            comm.irecv(-1, 0, tag=0, nbytes=10)


class TestAllreduce:
    def test_completes_when_all_join(self):
        engine, comm = make(n_ranks=3)
        r0 = comm.iallreduce(0, 8)
        engine.run()
        assert not r0.done
        r1 = comm.iallreduce(1, 8)
        engine.push(0.25, lambda: comm.iallreduce(2, 8))
        engine.run()
        assert r0.done and r1.done
        # Completion is gated by the last joiner (the skew effect of §4.1).
        assert r0.complete_time >= 0.25

    def test_all_ranks_complete_together(self):
        engine, comm = make(n_ranks=4)
        reqs = [comm.iallreduce(r, 8) for r in range(4)]
        engine.run()
        times = {r.complete_time for r in reqs}
        assert len(times) == 1

    def test_slot_ordering(self):
        """Each rank's k-th call joins slot k, even posted out of phase."""
        engine, comm = make(n_ranks=2)
        a0 = comm.iallreduce(0, 8)
        b0 = comm.iallreduce(0, 8)  # rank 0's second collective
        a1 = comm.iallreduce(1, 8)
        engine.run()
        assert a0.done and a1.done
        assert not b0.done
        b1 = comm.iallreduce(1, 8)
        engine.run()
        assert b0.done and b1.done
        assert b0.complete_time >= a0.complete_time

    def test_single_rank_world(self):
        engine, comm = make(n_ranks=1)
        r = comm.iallreduce(0, 8)
        engine.run()
        assert r.done


class TestRequest:
    def test_callback_after_completion_fires_immediately(self):
        engine, comm = make()
        s = comm.isend(0, 1, tag=0, nbytes=10)
        engine.run()
        fired = []
        s.on_complete(lambda r: fired.append(r.rid))
        assert fired == [s.rid]

    def test_double_completion_rejected(self):
        engine, comm = make()
        s = comm.isend(0, 1, tag=0, nbytes=10)
        engine.run()
        with pytest.raises(RuntimeError, match="twice"):
            s.fire_completion(99.0)
