"""Unit tests for the network model."""

import pytest

from repro.mpi.network import NetworkSpec, bxi_like, slow_ethernet


class TestProtocols:
    def test_eager_threshold(self):
        n = NetworkSpec(eager_threshold=1024)
        assert n.is_eager(1024)
        assert not n.is_eager(1025)

    def test_transfer_time_monotone(self):
        n = bxi_like()
        assert n.transfer_time(1000) < n.transfer_time(100_000)

    def test_transfer_includes_latency(self):
        n = NetworkSpec(latency=1e-5, bandwidth=1e9)
        assert n.transfer_time(0) == pytest.approx(1e-5)


class TestAllreduce:
    def test_single_rank_cheap(self):
        n = bxi_like()
        assert n.allreduce_time(1, 8) < n.allreduce_time(2, 8)

    def test_log_growth(self):
        n = bxi_like()
        t4 = n.allreduce_time(4, 8)
        t64 = n.allreduce_time(64, 8)
        t1024 = n.allreduce_time(1024, 8)
        # 4 -> 64 -> 1024 each add 4 doublings: equal increments.
        assert t64 - t4 == pytest.approx(t1024 - t64, rel=0.01)

    def test_bad_ranks_rejected(self):
        with pytest.raises(ValueError):
            bxi_like().allreduce_time(0, 8)


class TestPresets:
    def test_slow_ethernet_is_slower(self):
        assert slow_ethernet().bandwidth < bxi_like().bandwidth
        assert slow_ethernet().latency > bxi_like().latency

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkSpec(bandwidth=0)
