"""Prometheus text exposition: render, parse, validate, determinism."""

from __future__ import annotations

import pytest

from repro.metrics.prometheus import (
    CONTENT_TYPE,
    parse_exposition,
    render_prometheus,
    validate_exposition,
)
from repro.metrics.registry import MetricsRegistry


def small_registry() -> MetricsRegistry:
    r = MetricsRegistry()
    r.counter("demo_runs_total", "Runs by outcome", ("event",))
    r.get("demo_runs_total").labels("done").inc(3)
    r.get("demo_runs_total").labels("failed").inc()
    r.gauge("demo_in_flight", "Attempts executing").set(2)
    h = r.histogram("demo_seconds", "Makespans", (0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(4.0)
    return r


class TestRender:
    def test_help_and_type_per_family(self):
        text = render_prometheus(small_registry())
        assert "# HELP demo_runs_total Runs by outcome" in text
        assert "# TYPE demo_runs_total counter" in text
        assert "# TYPE demo_seconds histogram" in text
        assert text.endswith("\n")

    def test_histogram_expands_cumulative_buckets(self):
        text = render_prometheus(small_registry())
        assert 'demo_seconds_bucket{le="0.1"} 1' in text
        assert 'demo_seconds_bucket{le="1"} 2' in text
        assert 'demo_seconds_bucket{le="+Inf"} 3' in text
        assert "demo_seconds_sum 4.55" in text
        assert "demo_seconds_count 3" in text

    def test_families_and_labels_sorted(self):
        text = render_prometheus(small_registry())
        lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert lines.index('demo_runs_total{event="done"} 3') < lines.index(
            'demo_runs_total{event="failed"} 1'
        )
        assert text.index("demo_in_flight") < text.index("demo_runs_total")

    def test_integer_values_render_bare(self):
        text = render_prometheus(small_registry())
        assert "demo_in_flight 2\n" in text

    def test_label_value_escaping(self):
        r = MetricsRegistry()
        r.counter("esc_total", "help", ("name",)).labels('a"b\\c\nd').inc()
        text = render_prometheus(r)
        assert 'esc_total{name="a\\"b\\\\c\\nd"} 1' in text
        fams = parse_exposition(text)
        ((_, labels, _),) = fams["esc_total"]["samples"]
        assert labels == {"name": 'a"b\\c\nd'}

    def test_rows_input_matches_registry_input(self):
        r = small_registry()
        assert render_prometheus(r.snapshot()) == render_prometheus(r)

    def test_render_is_deterministic(self):
        assert render_prometheus(small_registry()) == render_prometheus(
            small_registry()
        )

    def test_non_finite_value_raises(self):
        rows = [{"name": "bad", "kind": "gauge", "help": "h",
                 "labels": {}, "value": float("inf"), "doc": None}]
        with pytest.raises(ValueError, match="non-finite"):
            render_prometheus(rows)

    def test_volatile_excluded_unless_asked(self):
        r = small_registry()
        r.gauge("demo_eta_seconds", "ETA", volatile=True).set(9.5)
        assert "demo_eta_seconds" not in render_prometheus(r)
        assert "demo_eta_seconds 9.5" in render_prometheus(
            r, include_volatile=True
        )

    def test_content_type_names_the_format_version(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestParseValidate:
    def test_round_trip(self):
        fams = validate_exposition(render_prometheus(small_registry()))
        assert fams["demo_runs_total"]["type"] == "counter"
        assert fams["demo_seconds"]["type"] == "histogram"
        # bucket/sum/count samples group under the base family name
        names = {s[0] for s in fams["demo_seconds"]["samples"]}
        assert names == {"demo_seconds_bucket", "demo_seconds_sum",
                         "demo_seconds_count"}

    def test_empty_document_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            validate_exposition("\n")

    def test_missing_type_rejected(self):
        with pytest.raises(ValueError, match="missing # TYPE"):
            validate_exposition("# HELP x h\nx 1\n")

    def test_missing_help_rejected(self):
        with pytest.raises(ValueError, match="missing # HELP"):
            validate_exposition("# TYPE x gauge\nx 1\n")

    def test_non_finite_sample_rejected(self):
        doc = "# HELP x h\n# TYPE x gauge\nx NaN\n"
        with pytest.raises(ValueError, match="non-finite"):
            validate_exposition(doc)

    def test_garbage_value_rejected(self):
        doc = "# HELP x h\n# TYPE x gauge\nx pizza\n"
        with pytest.raises(ValueError):
            parse_exposition(doc)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown TYPE"):
            parse_exposition("# TYPE x flavor\n")
