"""The metrics registry: validation, interning, buckets, volatility."""

from __future__ import annotations

import pytest

from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)


class TestValidation:
    def test_bad_metric_name_rejected(self):
        with pytest.raises(ValueError, match="invalid counter name"):
            Counter("0bad-name", "nope")

    def test_bad_label_name_rejected(self):
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("ok_name", "help", ("le-gal",))

    def test_counter_rejects_negative_increment(self):
        c = Counter("c_total", "help")
        with pytest.raises(ValueError, match=">= 0"):
            c.inc(-1)

    def test_gauge_rejects_non_finite(self):
        g = Gauge("g", "help")
        with pytest.raises(ValueError, match="finite"):
            g.set(float("nan"))
        with pytest.raises(ValueError, match="finite"):
            g.set(float("inf"))

    def test_histogram_needs_increasing_finite_buckets(self):
        with pytest.raises(ValueError, match="needs fixed buckets"):
            Histogram("h", "help", ())
        with pytest.raises(ValueError, match="must increase"):
            Histogram("h", "help", (1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="must increase"):
            Histogram("h", "help", (2.0, 1.0))
        with pytest.raises(ValueError, match="finite"):
            Histogram("h", "help", (1.0, float("inf")))

    def test_scalar_kinds_take_no_buckets(self):
        with pytest.raises(ValueError, match="takes no buckets"):
            MetricFamily("c", "counter", "help", buckets=(1.0,))

    def test_duplicate_registration_rejected(self):
        r = MetricsRegistry()
        r.counter("dup_total", "first")
        with pytest.raises(ValueError, match="already registered"):
            r.counter("dup_total", "second")

    def test_wrong_label_arity_rejected(self):
        c = Counter("c_total", "help", ("event",))
        with pytest.raises(ValueError, match="label value"):
            c.labels("a", "b")
        with pytest.raises(ValueError, match="label value"):
            c.labels()


class TestChildren:
    def test_same_labels_same_child(self):
        c = Counter("c_total", "help", ("event",))
        assert c.labels("done") is c.labels("done")
        assert c.labels("done") is not c.labels("failed")

    def test_unlabeled_family_passthrough(self):
        c = Counter("c_total", "help")
        c.inc()
        c.inc(2)
        assert c.value == 3.0

    def test_label_values_coerced_to_str(self):
        g = Gauge("g", "help", ("rank",))
        g.labels(0).set(1.5)
        assert g.labels("0").value == 1.5


class TestHistogram:
    def test_le_semantics_boundary_lands_in_its_bucket(self):
        h = Histogram("h", "help", (1.0, 5.0))
        h.observe(1.0)  # le="1.0" bucket (Prometheus le is <=)
        h.observe(0.5)
        h.observe(3.0)
        h.observe(100.0)  # +Inf slot
        assert h._default.counts == [2, 1, 1]
        assert h._default.count == 4
        assert h._default.sum == pytest.approx(104.5)

    def test_observe_rejects_non_finite(self):
        h = Histogram("h", "help", (1.0,))
        with pytest.raises(ValueError, match="finite"):
            h.observe(float("nan"))

    def test_sample_row_carries_bucket_doc(self):
        h = Histogram("h", "help", (1.0, 5.0))
        h.observe(0.5)
        h.observe(7.0)
        (row,) = h.samples()
        assert row["value"] == 2.0
        assert row["doc"] == {
            "buckets": [[1.0, 1], [5.0, 0]],
            "inf": 1,
            "sum": 7.5,
            "count": 2,
        }


class TestSnapshots:
    def test_samples_sorted_by_label_not_first_seen(self):
        c = Counter("c_total", "help", ("event",))
        c.labels("zeta").inc()
        c.labels("alpha").inc(2)
        rows = list(c.samples())
        assert [r["labels"]["event"] for r in rows] == ["alpha", "zeta"]

    def test_registry_snapshot_sorted_by_name(self):
        r = MetricsRegistry()
        r.gauge("z_gauge", "help").set(1)
        r.counter("a_total", "help").inc()
        assert [row["name"] for row in r.snapshot()] == ["a_total", "z_gauge"]

    def test_volatile_families_excluded_by_default(self):
        r = MetricsRegistry()
        r.counter("kept_total", "help").inc()
        r.gauge("wall_seconds", "help", volatile=True).set(12.5)
        names = {row["name"] for row in r.snapshot()}
        assert names == {"kept_total"}
        names = {row["name"] for row in r.snapshot(include_volatile=True)}
        assert names == {"kept_total", "wall_seconds"}

    def test_lookup_api(self):
        r = MetricsRegistry()
        c = r.counter("c_total", "help")
        assert r.get("c_total") is c
        assert "c_total" in r and "missing" not in r
        assert len(r) == 1
