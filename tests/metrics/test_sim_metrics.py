"""SimMetrics: hook accounting, registry materialization, integration."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.metrics.prometheus import render_prometheus, validate_exposition
from repro.metrics.sim import SimMetrics


def res(n_edges=0, n_skipped=0, n_redirects=0):
    return SimpleNamespace(
        n_edges=n_edges, n_skipped=n_skipped, n_redirects=n_redirects
    )


class TestHookAccounting:
    def test_task_end_tracks_latest_end_time(self):
        sm = SimMetrics()
        sm.on_task_end(None, 0, 0, 0.0, 2.0)
        sm.on_task_end(None, 1, 1, 0.5, 1.0)  # earlier end must not win
        assert sm.tasks_executed == 2
        assert sm.t_last_end == 2.0

    def test_task_create_accumulates_discovery_counters(self):
        sm = SimMetrics()
        sm.on_task_create(None, 0, res(3, 1, 0), cost=0.25, time=0.0)
        sm.on_task_create(None, 1, res(2, 2, 1), cost=0.5, time=0.1)
        assert sm.tasks_created == 2
        assert sm.edges == 5 and sm.edges_avoided == 3 and sm.redirects == 1
        assert sm.discovery_cost == pytest.approx(0.75)

    def test_replay_charges_discovery_only(self):
        sm = SimMetrics()
        sm.on_task_replay(None, 0, 1, cost=0.1, time=0.0)
        assert sm.tasks_replayed == 1
        assert sm.discovery_cost == pytest.approx(0.1)
        assert sm.edges == 0

    def test_msgs_and_barriers(self):
        sm = SimMetrics()
        sm.on_msg_post(None)
        sm.on_msg_post(None)
        sm.on_msg_complete(None)
        sm.on_barrier("iteration", 1.0)
        sm.on_barrier("iteration", 2.0)
        sm.on_barrier("taskwait", 2.0)
        assert sm.msgs_posted == 2 and sm.msgs_completed == 1
        assert sm.barriers == {"iteration": 2, "taskwait": 1}

    def test_discovery_share(self):
        sm = SimMetrics()
        assert sm.discovery_share() == 0.0  # no makespan yet
        sm.on_task_end(None, 0, 0, 0.0, 4.0)
        sm.on_task_create(None, 0, res(), cost=1.0, time=0.0)
        assert sm.discovery_share() == pytest.approx(0.25)


class TestFillRegistry:
    def test_counts_materialize_as_families(self):
        sm = SimMetrics()
        sm.on_task_end(None, 0, 0, 0.0, 2.0)
        sm.on_task_create(None, 0, res(3, 1, 0), cost=0.5, time=0.0)
        sm.on_msg_post(None)
        sm.on_msg_complete(None)
        sm.on_barrier("loop", 1.0)
        sm.on_register(None, 0)
        r = sm.fill_registry()
        assert r.get("repro_sim_tasks_total").value == 1
        assert r.get("repro_sim_edges_total").value == 3
        assert r.get("repro_sim_msgs_total").labels("posted").value == 1
        assert r.get("repro_sim_barriers_total").labels("loop").value == 1
        assert r.get("repro_sim_ranks").value == 1.0
        assert r.get("repro_sim_makespan_seconds").value == 2.0
        assert r.get("repro_sim_discovery_share").value == pytest.approx(0.25)

    def test_registry_renders_as_valid_exposition(self):
        sm = SimMetrics()
        sm.on_task_end(None, 0, 0, 0.0, 1.0)
        sm.on_barrier("iteration", 0.5)
        fams = validate_exposition(render_prometheus(sm.fill_registry()))
        assert "repro_sim_tasks_total" in fams


class TestIntegration:
    def test_attached_run_counts_match_result(self):
        from repro.campaign.runner import run_experiment
        from repro.campaign.spec import ExperimentSpec
        from repro.memory.machine import tiny_test_machine
        from repro.runtime import presets
        from repro.sim import InstrumentationBus

        spec = ExperimentSpec(
            app="lulesh",
            config=presets.mpc_omp(tiny_test_machine(4), n_threads=4),
            params={"s": 6, "iterations": 2, "tpl": 2},
        )
        bus = InstrumentationBus()
        sm = bus.attach(SimMetrics())
        result = run_experiment(spec, bus=bus)
        assert sm.tasks_executed == result.n_tasks
        # The makespan extends past the last task end by the closing
        # barrier, so t_last_end is a tight lower bound, not equal.
        assert 0.0 < sm.t_last_end <= result.makespan
        assert sm.t_last_end == pytest.approx(result.makespan, rel=0.05)
        assert sm.tasks_created > 0
        assert 0.0 < sm.discovery_share()

    def test_two_identical_runs_report_identical_counts(self):
        from repro.campaign.runner import run_experiment
        from repro.campaign.spec import ExperimentSpec
        from repro.memory.machine import tiny_test_machine
        from repro.runtime import presets
        from repro.sim import InstrumentationBus

        def counts():
            spec = ExperimentSpec(
                app="lulesh",
                config=presets.mpc_omp(tiny_test_machine(4), n_threads=4),
                params={"s": 6, "iterations": 1, "tpl": 2},
            )
            bus = InstrumentationBus()
            sm = bus.attach(SimMetrics())
            run_experiment(spec, bus=bus)
            return render_prometheus(sm.fill_registry())

        assert counts() == counts()
