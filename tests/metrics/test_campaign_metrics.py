"""CampaignMetrics: event counting, derived views, snapshot persistence."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.db import CampaignDB, read_metrics
from repro.db.store import metrics_snapshots
from repro.metrics.campaign import EVENTS, CampaignMetrics


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, dt: float) -> None:
        self.now += dt


def spec(label: str = "s0"):
    return SimpleNamespace(label=label)


def result(makespan: float = 0.5):
    return SimpleNamespace(makespan=makespan)


def metrics(n_total: int = 4, **kw) -> tuple[CampaignMetrics, FakeClock]:
    clock = FakeClock()
    return CampaignMetrics(n_total, clock=clock, **kw), clock


class TestEventCounting:
    def test_done_path(self):
        m, clock = metrics()
        m.on_run_start(0, spec(), 1)
        assert m.in_flight == 1
        clock.tick(2.0)
        m.on_run_done(0, spec(), result(0.25), wall=2.0)
        assert (m.started, m.done, m.in_flight, m.settled) == (1, 1, 0, 1)
        ev = m.registry.get("repro_campaign_runs_total")
        assert ev.labels("started").value == 1
        assert ev.labels("done").value == 1

    def test_all_event_children_precreated(self):
        m, _ = metrics()
        rows = [r for r in m.registry.snapshot()
                if r["name"] == "repro_campaign_runs_total"]
        assert [r["labels"]["event"] for r in rows] == sorted(EVENTS)

    def test_cached_counts_toward_hit_ratio(self):
        m, _ = metrics()
        m.on_run_cached(0, spec(), result())
        m.on_run_start(1, spec(), 1)
        m.on_run_done(1, spec(), result(), wall=1.0)
        assert m.cached == 1 and m.settled == 2
        assert m.hit_ratio() == 0.5
        assert m.registry.get("repro_campaign_cache_hit_ratio").value == 0.5

    def test_retry_returns_attempt_to_queue(self):
        m, _ = metrics()
        m.on_run_start(0, spec(), 1)
        m.on_run_retry(0, spec(), 1, "timeout")
        assert m.in_flight == 0 and m.retried == 1
        assert m.settled == 0  # a retry is not a settled run

    def test_failures_recorded_with_labels(self):
        m, _ = metrics()
        m.on_run_start(0, spec("bad-spec"), 1)
        m.on_run_failed(0, spec("bad-spec"), RuntimeError("boom"))
        assert m.failed == 1 and m.failures == ["bad-spec"]

    def test_makespan_histogram_observes_simulated_seconds(self):
        m, _ = metrics()
        m.on_run_start(0, spec(), 1)
        m.on_run_done(0, spec(), result(0.05), wall=3.0)
        hist = m.registry.get("repro_campaign_makespan_seconds")
        assert hist._default.count == 1
        assert hist._default.sum == pytest.approx(0.05)


class TestDerivedViews:
    def test_throughput_and_eta_from_settle_stamps(self):
        m, clock = metrics(n_total=4)
        for i in range(2):
            m.on_run_start(i, spec(), 1)
            clock.tick(1.0)
            m.on_run_done(i, spec(), result(), wall=1.0)
        assert m.throughput() == pytest.approx(1.0)
        assert m.eta() == pytest.approx(2.0)

    def test_eta_is_none_before_any_signal(self):
        m, _ = metrics()
        assert m.eta() is None  # zero elapsed, zero settled

    def test_elapsed_tracks_clock(self):
        m, clock = metrics()
        clock.tick(7.5)
        assert m.elapsed() == pytest.approx(7.5)


class TestVolatility:
    def test_wall_metrics_never_in_default_snapshot(self):
        m, clock = metrics()
        m.on_run_start(0, spec(), 1)
        clock.tick(1.0)
        m.on_run_done(0, spec(), result(), wall=1.0)
        names = {r["name"] for r in m.registry.snapshot()}
        assert "repro_campaign_run_wall_seconds" not in names
        assert "repro_campaign_elapsed_seconds" not in names
        assert "repro_campaign_eta_seconds" not in names
        assert "repro_campaign_throughput_runs_per_second" not in names
        assert "repro_campaign_makespan_seconds" in names

    def test_deterministic_snapshot_ignores_wall_times(self):
        def run(walls):
            m, clock = metrics(n_total=2)
            for i, wall in enumerate(walls):
                m.on_run_start(i, spec(f"s{i}"), 1)
                clock.tick(wall)
                m.on_run_done(i, spec(f"s{i}"), result(0.25 * (i + 1)), wall)
            return m.registry.snapshot()

        assert run([1.0, 2.0]) == run([30.0, 0.01])


class TestPersistence:
    def _drive(self, m, n):
        for i in range(n):
            m.on_run_start(i, spec(f"s{i}"), 1)
            m.on_run_done(i, spec(f"s{i}"), result(0.1 * (i + 1)), wall=1.0)

    def test_snapshot_every_n_settled_runs(self, tmp_path):
        with CampaignDB(tmp_path / "m.sqlite") as db:
            m, _ = metrics(n_total=4, store=db, campaign="c1",
                           snapshot_every=2)
            self._drive(m, 4)
            m.on_campaign_done(SimpleNamespace())
            assert metrics_snapshots(db) == [("c1", 2), ("c1", 4)]

    def test_final_snapshot_without_snapshot_every(self, tmp_path):
        with CampaignDB(tmp_path / "m.sqlite") as db:
            m, _ = metrics(n_total=2, store=db, campaign="c1")
            self._drive(m, 2)
            m.on_campaign_done(SimpleNamespace())
            assert metrics_snapshots(db) == [("c1", 2)]

    def test_persisted_rows_round_trip(self, tmp_path):
        with CampaignDB(tmp_path / "m.sqlite") as db:
            m, _ = metrics(n_total=2, store=db, campaign="c1")
            self._drive(m, 2)
            m.on_campaign_done(SimpleNamespace())
            rows = read_metrics(db, campaign="c1")
        by_name = {(r["name"], tuple(sorted(r["labels"].items()))): r
                   for r in rows}
        done = by_name[("repro_campaign_runs_total", (("event", "done"),))]
        assert done["value"] == 2.0 and done["kind"] == "counter"
        hist = by_name[("repro_campaign_makespan_seconds", ())]
        assert hist["doc"]["count"] == 2
        assert not any("wall" in r["name"] or "eta" in r["name"]
                       for r in rows)

    def test_identical_campaigns_persist_identical_rows(self, tmp_path):
        dumps = []
        for name in ("a", "b"):
            with CampaignDB(tmp_path / f"{name}.sqlite") as db:
                m, clock = metrics(n_total=3, store=db, campaign="c1",
                                   snapshot_every=1)
                for i in range(3):
                    m.on_run_start(i, spec(f"s{i}"), 1)
                    # wall clock differs per "machine"; rows must not
                    clock.tick(1.0 if name == "a" else 17.3)
                    m.on_run_done(i, spec(f"s{i}"), result(0.2), wall=5.0)
                m.on_campaign_done(SimpleNamespace())
                dumps.append("\n".join(db.conn.iterdump()))
        assert dumps[0] == dumps[1]

    def test_bind_store_takes_store_campaign(self, tmp_path):
        from repro.db import DbResultStore

        store = DbResultStore(tmp_path / "m.sqlite", campaign="from-store")
        m, _ = metrics(n_total=1)
        m.bind_store(store)
        assert m.db is store.db and m.campaign == "from-store"
        store.db.close()
