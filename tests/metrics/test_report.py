"""The HTML campaign report: structure, sections, determinism."""

from __future__ import annotations

from html.parser import HTMLParser

import pytest

from repro.campaign.engine import run_campaign
from repro.campaign.spec import ExperimentSpec
from repro.db import CampaignDB, DbResultStore
from repro.memory.machine import tiny_test_machine
from repro.metrics.report import render_report, write_report
from repro.runtime import presets

# HTML void elements; SVG elements self-close with "/>" and go through
# handle_startendtag, so they never belong here.
_VOID = {"meta", "br", "hr", "img", "link", "input"}


class _Checker(HTMLParser):
    """Fails on mismatched tags; counts elements of interest."""

    def __init__(self) -> None:
        super().__init__()
        self.stack: list[str] = []
        self.counts: dict[str, int] = {}

    def handle_starttag(self, tag, attrs):
        self.counts[tag] = self.counts.get(tag, 0) + 1
        if tag not in _VOID:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        # <line .../> and friends: count, but never touch the stack.
        self.counts[tag] = self.counts.get(tag, 0) + 1

    def handle_endtag(self, tag):
        assert self.stack and self.stack[-1] == tag, (
            f"mismatched </{tag}>, open stack {self.stack[-5:]}"
        )
        self.stack.pop()


def check_html(text: str) -> dict[str, int]:
    checker = _Checker()
    checker.feed(text)
    assert not checker.stack, f"unclosed tags: {checker.stack}"
    return checker.counts


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """A small two-config sweep campaign with one injected failure."""
    path = tmp_path_factory.mktemp("report") / "camp.sqlite"
    base = ExperimentSpec(
        app="lulesh",
        config=presets.mpc_omp(tiny_test_machine(4), n_threads=4),
        params={"s": 6, "iterations": 1, "tpl": 2},
    )
    alt = ExperimentSpec(
        app="lulesh",
        config=presets.llvm_like(tiny_test_machine(4), n_threads=4),
        params={"s": 6, "iterations": 1, "tpl": 2},
    )
    specs = [s.with_params(tpl=t) for s in (base, alt) for t in (2, 4, 8)]
    out = run_campaign(specs, store=path, campaign="rep", snapshot_every=2)
    assert out.ok
    failed = base.with_params(tpl=64)
    cache = DbResultStore(path, campaign="rep")
    cache.put_error(failed, "Traceback (most recent call last)\nBoom: nope")
    cache.db.close()
    return path


class TestRenderReport:
    def test_html_is_well_formed(self, store):
        with CampaignDB(store) as db:
            counts = check_html(render_report(db))
        assert counts["svg"] >= 1
        assert counts["table"] >= 2
        assert counts["title"] > 1  # page title + SVG hover tooltips

    def test_sections_present(self, store):
        with CampaignDB(store) as db:
            text = render_report(db)
        assert "makespan sweep" in text
        assert "Discovery-counter deltas" in text
        assert "Failed runs" in text
        assert "Metrics snapshot" in text
        assert "Boom: nope" in text
        assert "table view" in text  # every chart has a table fallback

    def test_legend_for_two_configs(self, store):
        with CampaignDB(store) as db:
            text = render_report(db)
        assert 'class="legend"' in text
        assert "mpc-omp" in text and "llvm" in text

    def test_kpi_tiles_read_metric_snapshots(self, store):
        with CampaignDB(store) as db:
            text = render_report(db)
        assert "Executed" in text and "Cache hits" in text
        assert "Hit rate" in text

    def test_render_is_byte_deterministic(self, store):
        with CampaignDB(store) as db:
            a = render_report(db)
            b = render_report(db)
        with CampaignDB(store) as db:
            c = render_report(db)
        assert a == b == c

    def test_no_wall_clock_content(self, store):
        # Volatile (wall-clock) families must never reach the report.
        with CampaignDB(store) as db:
            text = render_report(db)
        assert "repro_campaign_run_wall_seconds" not in text
        assert "repro_campaign_eta_seconds" not in text
        assert "repro_campaign_elapsed_seconds" not in text
        assert "repro_campaign_throughput_runs_per_second" not in text

    def test_campaign_filter(self, store):
        with CampaignDB(store) as db:
            text = render_report(db, campaign="rep")
        assert "Campaign report — rep" in text

    def test_empty_store_still_renders(self, tmp_path):
        with CampaignDB(tmp_path / "empty.sqlite") as db:
            db.conn  # create schema
            text = render_report(db)
        check_html(text)
        assert "Stored runs" in text

    def test_write_report(self, store, tmp_path):
        out = write_report(store, tmp_path / "report.html")
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")
        with CampaignDB(store) as db:
            assert text == render_report(db)
