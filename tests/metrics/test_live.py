"""LiveRenderer and ProgressPrinter: status lines, pacing, failure recap."""

from __future__ import annotations

import io
from types import SimpleNamespace

from repro.campaign.bus import CampaignBus, ProgressPrinter
from repro.metrics.campaign import CampaignMetrics
from repro.metrics.live import LiveRenderer, _fmt_duration


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, dt: float) -> None:
        self.now += dt


def spec(label: str = "s0"):
    return SimpleNamespace(label=label)


def result(makespan: float = 0.5):
    return SimpleNamespace(makespan=makespan)


def campaign_result(summary: str = "campaign: 2 runs"):
    return SimpleNamespace(summary=lambda: summary)


class TestFmtDuration:
    def test_minutes(self):
        assert _fmt_duration(63.2) == "1:03"
        assert _fmt_duration(0) == "0:00"

    def test_hours(self):
        assert _fmt_duration(5025) == "1:23:45"


class TestStatusLine:
    def _renderer(self, n_total=4):
        clock = FakeClock()
        m = CampaignMetrics(n_total, clock=clock)
        stream = io.StringIO()
        r = LiveRenderer(m, stream=stream, clock=clock)
        return m, r, clock, stream

    def test_empty_campaign_renders(self):
        _, r, _, _ = self._renderer()
        line = r.status_line()
        assert "0/4" in line and "eta -:--" in line

    def test_progress_and_eta(self):
        m, r, clock, _ = self._renderer()
        for i in range(2):
            m.on_run_start(i, spec(), 1)
            clock.tick(10.0)
            m.on_run_done(i, spec(), result(), wall=10.0)
        line = r.status_line()
        assert "2/4" in line and " 50%" in line
        assert "eta 0:20" in line
        assert ">" in line  # partial bar carries the arrow head

    def test_failures_appear_only_when_present(self):
        m, r, _, _ = self._renderer()
        assert "fail" not in r.status_line()
        m.on_run_start(0, spec("bad"), 1)
        m.on_run_failed(0, spec("bad"), RuntimeError())
        assert "fail 1" in r.status_line()

    def test_full_bar_at_completion(self):
        m, r, clock, _ = self._renderer(n_total=1)
        m.on_run_start(0, spec(), 1)
        clock.tick(1.0)
        m.on_run_done(0, spec(), result(), wall=1.0)
        assert "=" * r.width in r.status_line()


class TestRendering:
    def test_pipe_output_throttles(self):
        clock = FakeClock()
        m = CampaignMetrics(10, clock=clock)
        stream = io.StringIO()
        r = LiveRenderer(m, stream=stream, clock=clock)
        bus = CampaignBus()
        bus.attach(m)
        bus.attach(r)
        for i in range(10):  # all within one throttle window
            for cb in bus.run_start:
                cb(i, spec(), 1)
            clock.tick(0.01)
            for cb in bus.run_done:
                cb(i, spec(), result(), 0.01)
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert 1 <= len(lines) <= 2  # not one line per event

    def test_done_recap_lists_failures_and_summary(self):
        clock = FakeClock()
        m = CampaignMetrics(2, clock=clock)
        stream = io.StringIO()
        r = LiveRenderer(m, stream=stream, clock=clock)
        m.on_run_start(0, spec("good"), 1)
        m.on_run_done(0, spec("good"), result(), wall=1.0)
        m.on_run_start(1, spec("bad-spec"), 1)
        m.on_run_failed(1, spec("bad-spec"), RuntimeError("boom"))
        clock.tick(65.0)
        m.on_campaign_done(campaign_result("campaign: 2 runs, 1 failed"))
        r.on_campaign_done(campaign_result("campaign: 2 runs, 1 failed"))
        out = stream.getvalue()
        assert "FAILED bad-spec" in out
        assert "campaign: 2 runs, 1 failed [wall 1:05]" in out

    def test_no_control_codes_on_pipe(self):
        clock = FakeClock()
        m = CampaignMetrics(1, clock=clock)
        stream = io.StringIO()  # isatty() is False
        r = LiveRenderer(m, stream=stream, clock=clock)
        m.on_run_start(0, spec(), 1)
        r.on_run_start(0, spec(), 1)
        assert "\x1b" not in stream.getvalue()
        assert "\r" not in stream.getvalue()


class TestProgressPrinter:
    def _printer(self, n_total=3):
        clock = FakeClock()
        stream = io.StringIO()
        return ProgressPrinter(n_total, stream=stream, clock=clock), clock, stream

    def test_lines_carry_elapsed_and_eta(self):
        p, clock, stream = self._printer()
        clock.tick(2.0)
        p.on_run_done(0, spec("a"), result(0.25), wall=2.0)
        line = stream.getvalue().splitlines()[0]
        assert line.startswith("[1/3][    2.0s eta    4.0s]")
        assert "makespan=0.250000s" in line

    def test_final_line_omits_eta(self):
        p, clock, stream = self._printer(n_total=1)
        clock.tick(1.0)
        p.on_run_done(0, spec("a"), result(), wall=1.0)
        assert "eta" not in stream.getvalue()

    def test_retry_does_not_advance_counter(self):
        p, _, stream = self._printer()
        p.on_run_retry(0, spec("a"), 1, "timeout")
        p.on_run_done(0, spec("a"), result(), wall=1.0)
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("[0/3]") and "retry" in lines[0]
        assert lines[1].startswith("[1/3]")

    def test_summary_recaps_failures(self):
        p, clock, stream = self._printer(n_total=2)
        p.on_run_done(0, spec("good"), result(), wall=1.0)
        p.on_run_failed(1, spec("bad-spec"), "Traceback...\nBoom: nope")
        clock.tick(3.5)
        p.on_campaign_done(campaign_result("campaign: 2 runs, 1 failed"))
        out = stream.getvalue()
        assert "Boom: nope" in out
        assert "FAILED bad-spec\n" in out
        assert "campaign: 2 runs, 1 failed [wall 3.5s]" in out
