"""Tests for the util helpers."""

import numpy as np
import pytest

from repro.util import Interner
from repro.util.rng import DEFAULT_SEED, make_rng
from repro.util.units import GiB, KiB, MiB, fmt_bytes, fmt_count, fmt_time, ms, ns, us
from repro.util.validation import check_in, check_non_negative, check_positive


class TestUnits:
    def test_byte_constants(self):
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB

    def test_time_constants(self):
        assert us == pytest.approx(1000 * ns)
        assert ms == pytest.approx(1000 * us)

    @pytest.mark.parametrize("value,expected", [
        (2.0, "2.00s"),
        (0.0042, "4.20ms"),
        (3.5e-6, "3.50us"),
        (250e-9, "250ns"),
    ])
    def test_fmt_time(self, value, expected):
        assert fmt_time(value) == expected

    def test_fmt_time_nan(self):
        assert fmt_time(float("nan")) == "nan"

    @pytest.mark.parametrize("value,expected", [
        (512, "512B"),
        (2048, "2.00KiB"),
        (3 * MiB, "3.00MiB"),
        (GiB, "1.00GiB"),
    ])
    def test_fmt_bytes(self, value, expected):
        assert fmt_bytes(value) == expected

    @pytest.mark.parametrize("value,expected", [
        (42, "42"),
        (1500, "1.5K"),
        (2_500_000, "2.50M"),
        (7_500_000_000, "7.50B"),
    ])
    def test_fmt_count(self, value, expected):
        assert fmt_count(value) == expected


class TestRng:
    def test_deterministic_default(self):
        assert make_rng().integers(1 << 30) == make_rng().integers(1 << 30)

    def test_explicit_seed(self):
        a = make_rng(7).random(4)
        b = make_rng(7).random(4)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert make_rng(1).integers(1 << 30) != make_rng(2).integers(1 << 30)

    def test_default_seed_constant(self):
        assert DEFAULT_SEED == 0x5EED


class TestInterner:
    def test_dense_ids_in_first_seen_order(self):
        intern = Interner()
        assert [intern(k) for k in ("x", ("a", 3), "x", "y")] == [0, 1, 0, 2]

    def test_idempotent(self):
        intern = Interner()
        assert intern("addr") == intern("addr") == 0

    def test_len_and_contains(self):
        intern = Interner()
        intern("x")
        intern("y")
        assert len(intern) == 2
        assert "x" in intern
        assert "z" not in intern

    def test_same_sequence_same_ids(self):
        keys = [("field", i % 3) for i in range(10)]
        a, b = Interner(), Interner()
        assert [a(k) for k in keys] == [b(k) for k in keys]


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        check_non_negative("x", 0)
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_in(self):
        check_in("mode", "a", ("a", "b"))
        with pytest.raises(ValueError, match="one of"):
            check_in("mode", "z", ("a", "b"))
